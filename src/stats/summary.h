// Streaming summary statistics (Welford) with confidence intervals.
//
// Every experiment in bench/ reports mean ± CI over repeated seeded trials;
// this is the single implementation they all share.
#pragma once

#include <cstdint>
#include <string>

namespace abe {

class Summary {
 public:
  Summary() = default;

  void add(double x);

  // Merges another summary (parallel Welford combination).
  void merge(const Summary& other);

  std::uint64_t count() const { return n_; }
  double mean() const;
  // Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

  // Standard error of the mean (stddev / sqrt(n)).
  double std_error() const;

  // Half-width of a ~95% confidence interval for the mean, using Student-t
  // critical values for small n and the normal 1.96 asymptote otherwise.
  double ci95_half_width() const;

  // "mean ± hw (n=…)" for logs.
  std::string to_string() const;

  // JSON object {"count", "mean", "stddev", "min", "max", "ci95"} with
  // round-trip (max_digits10) float precision — the single serialization
  // point for summaries in emitted artefacts (scenario sweep JSON), so
  // bit-identical aggregates serialize to byte-identical JSON. Every field
  // is a finite JSON number: ci95 is 0 below two samples, and an empty
  // summary serializes min/max as 0 (NaN has no JSON form).
  std::string to_json() const;

  // Exact (==) state comparison: true when both summaries hold identical
  // counts and identical floating-point accumulators. Used by tests to
  // assert parallel trial aggregation is bit-identical to serial.
  friend bool operator==(const Summary& a, const Summary& b) {
    return a.n_ == b.n_ && a.mean_ == b.mean_ && a.m2_ == b.m2_ &&
           a.min_ == b.min_ && a.max_ == b.max_;
  }
  friend bool operator!=(const Summary& a, const Summary& b) {
    return !(a == b);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Two-sided Student-t 97.5% critical value for `dof` degrees of freedom.
// Exact table for small dof, 1.96 asymptotically.
double t_critical_975(std::uint64_t dof);

}  // namespace abe
