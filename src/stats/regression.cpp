#include "stats/regression.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace abe {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  ABE_CHECK_EQ(x.size(), y.size());
  ABE_CHECK_GE(x.size(), 2u);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  ABE_CHECK_GT(sxx, 0.0) << "x values must not all be equal";
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_loglog(const std::vector<double>& x,
                     const std::vector<double>& y) {
  ABE_CHECK_EQ(x.size(), y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ABE_CHECK_GT(x[i], 0.0);
    ABE_CHECK_GT(y[i], 0.0);
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_linear(lx, ly);
}

double correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  ABE_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return std::numeric_limits<double>::quiet_NaN();
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace abe
