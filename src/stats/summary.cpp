#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace abe {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Summary::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double Summary::std_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double Summary::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return t_critical_975(n_ - 1) * std_error();
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << mean() << " ± " << ci95_half_width() << " (n=" << n_ << ")";
  return os.str();
}

std::string Summary::to_json() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  // min()/max() are NaN when empty, which JSON cannot carry — an empty
  // summary (count 0 says it all) serializes as zeros.
  const double lo = n_ == 0 ? 0.0 : min();
  const double hi = n_ == 0 ? 0.0 : max();
  os << "{\"count\": " << n_ << ", \"mean\": " << mean()
     << ", \"stddev\": " << stddev() << ", \"min\": " << lo
     << ", \"max\": " << hi << ", \"ci95\": " << ci95_half_width() << "}";
  return os.str();
}

double t_critical_975(std::uint64_t dof) {
  // Standard two-sided 95% table; beyond 30 dof the normal value is within
  // ~2% and we interpolate through a few anchors down to 1.96.
  static const double kSmall[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return std::numeric_limits<double>::infinity();
  if (dof <= 30) return kSmall[dof];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

}  // namespace abe
