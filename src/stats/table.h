// ASCII table printer.
//
// Every bench binary prints its results as the rows a paper table would
// show; this formatter keeps them aligned and machine-greppable
// (cells are also emitted as "key=value" comments when requested).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace abe {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(std::int64_t v);

  // Renders with column alignment, a header underline, and optional title.
  std::string render(const std::string& title = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abe
