#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace abe {

void Histogram::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Histogram::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::quantile(double q) const {
  ABE_CHECK_GE(q, 0.0);
  ABE_CHECK_LE(q, 1.0);
  ABE_CHECK(!samples_.empty()) << "quantile of empty histogram";
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::tail_fraction(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::string Histogram::ascii(int bins, int width) const {
  ABE_CHECK_GT(bins, 0);
  ABE_CHECK_GT(width, 0);
  if (samples_.empty()) return "(empty histogram)\n";
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(bins), 0);
  for (double x : samples_) {
    auto b = static_cast<std::size_t>((x - lo) / span * bins);
    if (b >= counts.size()) b = counts.size() - 1;
    ++counts[b];
  }
  const std::uint64_t peak = *std::max_element(counts.begin(), counts.end());
  std::ostringstream os;
  for (int b = 0; b < bins; ++b) {
    const double left = lo + span * b / bins;
    const int bar = peak == 0 ? 0
                              : static_cast<int>(static_cast<double>(
                                    counts[b] * static_cast<std::uint64_t>(width)) /
                                                 static_cast<double>(peak));
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << left << ") " << std::string(static_cast<std::size_t>(bar), '#')
       << " " << counts[b] << "\n";
  }
  return os.str();
}

}  // namespace abe
