// Least-squares fits used to verify complexity claims.
//
// The paper claims linear expected time/message complexity. The benches fit
// measured(n) against n directly (R² of a linear fit) and also fit the
// log-log slope: slope ≈ 1.0 ⇒ linear, ≈ 1 + log factor drifts above 1.
#pragma once

#include <vector>

namespace abe {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

// Ordinary least squares of y against x. Requires >= 2 distinct x values.
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

// Fits log(y) against log(x); slope estimates the polynomial degree.
// Requires all x, y > 0.
LinearFit fit_loglog(const std::vector<double>& x,
                     const std::vector<double>& y);

// Pearson correlation coefficient; NaN when either variance is zero.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace abe
