# Script mode (cmake -P): writes OUT with the current git short sha, only
# touching the file when the sha changed so dependents don't rebuild
# spuriously. Runs at BUILD time (not configure time) so bench metadata
# names the commit actually being measured, even in an incremental build.
execute_process(
  COMMAND git rev-parse --short HEAD
  WORKING_DIRECTORY ${SRC_DIR}
  OUTPUT_VARIABLE ABE_SHA
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET)
if(NOT ABE_SHA)
  set(ABE_SHA "unknown")
endif()
set(content "#define ABE_BENCH_GIT_SHA \"${ABE_SHA}\"\n")
set(old "")
if(EXISTS ${OUT})
  file(READ ${OUT} old)
endif()
if(NOT content STREQUAL old)
  file(WRITE ${OUT} "${content}")
endif()
