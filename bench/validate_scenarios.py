#!/usr/bin/env python3
"""Validate abe_scenarios sweep JSON against the sweep schema.

  python3 bench/validate_scenarios.py sweep.json [more.json ...]

Checks the structure the "abe-scenario-sweep-v5" schema promises — the
metadata provenance block, per-cell axes (including the execution runtime
and the adversarial behavior/adversary axes), aggregate summaries, and the
v5 observability block — plus the one correctness gate a structural check
can carry: safety_violations == 0 (a cell that elected two leaders is a
bug, not a perf delta; the violation_seeds list in the document replays
it). Older documents are still accepted: v2 is v3 minus the runtime
fields, v3 is v4 minus the adversary/safety-probe fields, v4 is v5 minus
the observability block. Exit codes: 0 valid, 1 schema violation or
safety violation, 2 unreadable input.

v5 observability block, per cell:
  "metrics": array of metric entries sorted ascending by "name"; each has
      "name" (str), "kind" ("counter" | "gauge" | "histogram") and either
      "value" (number; counters and gauges) or "bounds" + "counts"
      (histograms: bounds is the ascending upper-bound list, counts has
      len(bounds) + 1 entries — the last is the overflow bucket).
      Simulator cells produce this block deterministically: same seed
      base, same thread count or not, bit-identical values.
  "wall": object with numeric "build_ms" / "run_ms" / "settle_ms" —
      summed wall-clock phase times across the cell's trials. Real
      elapsed time; never compared for determinism.

CI runs this in the scenario-smoke job; it is dependency-free on purpose
(stdlib json only).
"""

import json
import sys

SCHEMAS = ("abe-scenario-sweep-v2", "abe-scenario-sweep-v3",
           "abe-scenario-sweep-v4", "abe-scenario-sweep-v5")

METRIC_KINDS = ("counter", "gauge", "histogram")

WALL_FIELDS = {
    "build_ms": (int, float),
    "run_ms": (int, float),
    "settle_ms": (int, float),
}

METADATA_FIELDS = {
    "git_sha": str,
    "compiler": str,
    "build_type": str,
    "equeue": str,
    "trial_threads": int,
    "trials": int,
    "seed_base": int,
}

RUNTIMES = ("sim", "thread")

# The JSON emitter caps the violation_seeds list it prints; the count field
# stays authoritative (src/scenario/sweep.cpp).
MAX_EMITTED_SEEDS = 16

SUMMARY_FIELDS = {
    "count": int,
    "mean": (int, float),
    "stddev": (int, float),
    "min": (int, float),
    "max": (int, float),
    "ci95": (int, float),
}

CELL_FIELDS = {
    "cell": str,
    "scenario": str,
    "algorithm": str,
    "topology": dict,
    "delay": dict,
    "clock": dict,
    "failure": str,
    "equeue": str,
    "trials": int,
    "failures": int,
    "safety_violations": int,
    "messages": dict,
    "time": dict,
}


def fail(path, what):
    print(f"{path}: INVALID: {what}", file=sys.stderr)
    return False


def check_fields(path, obj, fields, where):
    for key, typ in fields.items():
        if key not in obj:
            return fail(path, f"{where} missing '{key}'")
        if not isinstance(obj[key], typ):
            return fail(path, f"{where} field '{key}' has type "
                              f"{type(obj[key]).__name__}")
    return True


def validate_metrics(path, metrics, where):
    """Checks one cell's v5 metrics array (see module docstring)."""
    names = []
    for j, entry in enumerate(metrics):
        at = f"{where}.metrics[{j}]"
        if not isinstance(entry, dict):
            return fail(path, f"{at} is not an object")
        name, kind = entry.get("name"), entry.get("kind")
        if not isinstance(name, str) or not name:
            return fail(path, f"{at} missing 'name'")
        if kind not in METRIC_KINDS:
            return fail(path, f"{at}.kind {kind!r} not in {METRIC_KINDS}")
        names.append(name)
        if kind == "histogram":
            bounds, counts = entry.get("bounds"), entry.get("counts")
            if not isinstance(bounds, list) or not bounds or \
                    not all(isinstance(b, (int, float)) for b in bounds):
                return fail(path, f"{at}.bounds malformed")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                return fail(path, f"{at}.bounds not strictly increasing")
            if not isinstance(counts, list) or \
                    len(counts) != len(bounds) + 1 or \
                    not all(isinstance(c, int) and c >= 0 for c in counts):
                return fail(path, f"{at}.counts must be {len(bounds) + 1} "
                                  "non-negative integers (last = overflow)")
        elif not isinstance(entry.get("value"), (int, float)):
            return fail(path, f"{at} ({name}) missing numeric 'value'")
    if names != sorted(names):
        return fail(path, f"{where}.metrics not sorted by name "
                          "(deterministic snapshot order)")
    if len(set(names)) != len(names):
        return fail(path, f"{where}.metrics has duplicate names")
    return True


def validate(path, doc):
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        return fail(path, f"schema is {schema!r}, want one of {SCHEMAS}")
    v3 = schema != "abe-scenario-sweep-v2"
    v4 = schema in ("abe-scenario-sweep-v4", "abe-scenario-sweep-v5")
    v5 = schema == "abe-scenario-sweep-v5"
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        return fail(path, "metadata is not an object")
    metadata_fields = dict(METADATA_FIELDS)
    if v3:
        metadata_fields["runtime"] = str
    if not check_fields(path, metadata, metadata_fields, "metadata"):
        return False
    if v3 and metadata["runtime"] not in RUNTIMES:
        return fail(path, f"metadata.runtime {metadata['runtime']!r} not in "
                          f"{RUNTIMES}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        return fail(path, "cells must be a non-empty array")
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            return fail(path, f"{where} is not an object")
        cell_fields = dict(CELL_FIELDS)
        if v3:
            cell_fields["runtime"] = str
        if v4:
            cell_fields["behavior"] = str
            cell_fields["adversary"] = str
            cell_fields["stalled"] = int
            cell_fields["violation_seeds"] = list
        if v5:
            cell_fields["metrics"] = list
            cell_fields["wall"] = dict
        if not check_fields(path, cell, cell_fields, where):
            return False
        if v5:
            if not validate_metrics(path, cell["metrics"], where):
                return False
            if not check_fields(path, cell["wall"], WALL_FIELDS,
                                f"{where}.wall"):
                return False
        if v3 and cell["runtime"] not in RUNTIMES:
            return fail(path, f"{where}.runtime {cell['runtime']!r} not in "
                              f"{RUNTIMES}")
        topo = cell["topology"]
        if not isinstance(topo.get("family"), str) or \
                not isinstance(topo.get("n"), int) or topo["n"] < 1:
            return fail(path, f"{where}.topology malformed")
        for summary_key in ("messages", "time"):
            if not check_fields(path, cell[summary_key], SUMMARY_FIELDS,
                                f"{where}.{summary_key}"):
                return False
        # v4 splits stalled trials (quiescent with no way forward) out of
        # failures (still working at the deadline); completed is what's left.
        stalled = cell["stalled"] if v4 else 0
        completed = cell["trials"] - cell["failures"] - stalled
        if cell["messages"]["count"] != completed:
            return fail(path, f"{where}: summary count "
                              f"{cell['messages']['count']} != completed "
                              f"trials {completed}")
        if v4:
            seeds = cell["violation_seeds"]
            if not all(isinstance(s, int) and s >= 0 for s in seeds):
                return fail(path, f"{where}.violation_seeds must be "
                                  "non-negative integers")
            expect = min(cell["safety_violations"], MAX_EMITTED_SEEDS)
            if len(seeds) != expect:
                return fail(path, f"{where}: violation_seeds has "
                                  f"{len(seeds)} entries, want {expect} "
                                  f"(count {cell['safety_violations']}, "
                                  f"emit cap {MAX_EMITTED_SEEDS})")
        if cell["safety_violations"] != 0:
            return fail(path, f"{where} ({cell['cell']}): "
                              f"{cell['safety_violations']} safety "
                              "violation(s) — a correctness bug, not noise")
    print(f"{path}: ok ({len(cells)} cells, "
          f"sha {metadata['git_sha']}, {metadata['compiler']})")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: cannot read: {err}", file=sys.stderr)
            return 2
        ok = validate(path, doc) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
