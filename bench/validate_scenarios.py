#!/usr/bin/env python3
"""Validate abe_scenarios sweep JSON against the sweep schema.

  python3 bench/validate_scenarios.py sweep.json [more.json ...]
  python3 bench/validate_scenarios.py --self-test

Checks the structure the "abe-scenario-sweep-v7" schema promises — the
metadata provenance block, per-cell axes (including the execution runtime
and the adversarial behavior/adversary axes), aggregate summaries, the
v5 observability block and the v6 causal block — plus the one correctness
gate a structural check can carry: safety_violations == 0 (a cell that
elected two leaders is a bug, not a perf delta; the violation_seeds list
in the document replays it). Older documents are still accepted: v2 is v3
minus the runtime fields, v3 is v4 minus the adversary/safety-probe
fields, v4 is v5 minus the observability block, v5 is v6 minus the causal
block, v6 is v7 minus the "udp" runtime value and the wall "total_ms"
field (a v6 document claiming runtime "udp" is rejected — only v7
emitters produce it). Exit codes: 0 valid, 1 schema violation or safety
violation, 2 unreadable input.

v5 observability block, per cell:
  "metrics": array of metric entries sorted ascending by "name"; each has
      "name" (str), "kind" ("counter" | "gauge" | "histogram") and either
      "value" (number; counters and gauges) or "bounds" + "counts"
      (histograms: bounds is the ascending upper-bound list, counts has
      len(bounds) + 1 entries — the last is the overflow bucket).
      Simulator cells produce this block deterministically: same seed
      base, same thread count or not, bit-identical values.
  "wall": object with numeric "build_ms" / "run_ms" / "settle_ms" —
      summed wall-clock phase times across the cell's trials. Real
      elapsed time; never compared for determinism. v7 adds "total_ms",
      measured between the same chained clock reads that bound the
      phases (src/runtime/runtime.h WallPhaseTimes).

v6 causal block, per cell (src/obs/causal.h):
  "critical_path": object with non-negative int "considered" / "found" /
      "truncated" (truncated <= found <= considered), six summary objects
      "hops" / "span" / "channel_delay" / "processing" / "queueing" /
      "waiting" (each counting the found paths), "top_channels" (at most
      8 {"edge", "hops", "delay"} entries, descending by delay) and —
      exactly when found > 0 — "worst": {"seed", "span"}, the replayable
      worst trial. Deterministic on simulator cells.
  "timeseries": OPTIONAL object {"interval" > 0, "trials" >= 1,
      "samples": [{"t", "pending", "in_flight", "live"}, ...]} with
      sample times ascending on the interval grid. Present only when the
      run sampled the sim-time grid.

`--self-test` validates built-in fixtures — a minimal document per schema
version plus malformed-v6 documents that must be rejected — so CI catches
a validator regression without needing a sweep artifact.

CI runs this in the scenario-smoke job; it is dependency-free on purpose
(stdlib json only).
"""

import json
import sys

SCHEMAS = ("abe-scenario-sweep-v2", "abe-scenario-sweep-v3",
           "abe-scenario-sweep-v4", "abe-scenario-sweep-v5",
           "abe-scenario-sweep-v6", "abe-scenario-sweep-v7")

METRIC_KINDS = ("counter", "gauge", "histogram")

WALL_FIELDS = {
    "build_ms": (int, float),
    "run_ms": (int, float),
    "settle_ms": (int, float),
}

# v7 adds the total phase (same clock reads, so build+run+settle == total
# on each trial; sums preserve that but floating-point noise is fine here —
# structure only, no arithmetic check).
WALL_FIELDS_V7 = dict(WALL_FIELDS, total_ms=(int, float))

METADATA_FIELDS = {
    "git_sha": str,
    "compiler": str,
    "build_type": str,
    "equeue": str,
    "trial_threads": int,
    "trials": int,
    "seed_base": int,
}

# The "udp" execution substrate (real loopback datagrams) only exists from
# v7 on; a pre-v7 document carrying it is a forgery, not a downgrade.
RUNTIMES = ("sim", "thread")
RUNTIMES_V7 = ("sim", "thread", "udp")

# The JSON emitter caps the violation_seeds list it prints; the count field
# stays authoritative (src/scenario/sweep.cpp).
MAX_EMITTED_SEEDS = 16

# write_sweep_json emits at most this many top_channels entries per cell.
MAX_TOP_CHANNELS = 8

CRITICAL_PATH_SUMMARIES = ("hops", "span", "channel_delay", "processing",
                           "queueing", "waiting")

SUMMARY_FIELDS = {
    "count": int,
    "mean": (int, float),
    "stddev": (int, float),
    "min": (int, float),
    "max": (int, float),
    "ci95": (int, float),
}

CELL_FIELDS = {
    "cell": str,
    "scenario": str,
    "algorithm": str,
    "topology": dict,
    "delay": dict,
    "clock": dict,
    "failure": str,
    "equeue": str,
    "trials": int,
    "failures": int,
    "safety_violations": int,
    "messages": dict,
    "time": dict,
}


def fail(path, what):
    print(f"{path}: INVALID: {what}", file=sys.stderr)
    return False


def check_fields(path, obj, fields, where):
    for key, typ in fields.items():
        if key not in obj:
            return fail(path, f"{where} missing '{key}'")
        if not isinstance(obj[key], typ):
            return fail(path, f"{where} field '{key}' has type "
                              f"{type(obj[key]).__name__}")
    return True


def validate_metrics(path, metrics, where):
    """Checks one cell's v5 metrics array (see module docstring)."""
    names = []
    for j, entry in enumerate(metrics):
        at = f"{where}.metrics[{j}]"
        if not isinstance(entry, dict):
            return fail(path, f"{at} is not an object")
        name, kind = entry.get("name"), entry.get("kind")
        if not isinstance(name, str) or not name:
            return fail(path, f"{at} missing 'name'")
        if kind not in METRIC_KINDS:
            return fail(path, f"{at}.kind {kind!r} not in {METRIC_KINDS}")
        names.append(name)
        if kind == "histogram":
            bounds, counts = entry.get("bounds"), entry.get("counts")
            if not isinstance(bounds, list) or not bounds or \
                    not all(isinstance(b, (int, float)) for b in bounds):
                return fail(path, f"{at}.bounds malformed")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                return fail(path, f"{at}.bounds not strictly increasing")
            if not isinstance(counts, list) or \
                    len(counts) != len(bounds) + 1 or \
                    not all(isinstance(c, int) and c >= 0 for c in counts):
                return fail(path, f"{at}.counts must be {len(bounds) + 1} "
                                  "non-negative integers (last = overflow)")
        elif not isinstance(entry.get("value"), (int, float)):
            return fail(path, f"{at} ({name}) missing numeric 'value'")
    if names != sorted(names):
        return fail(path, f"{where}.metrics not sorted by name "
                          "(deterministic snapshot order)")
    if len(set(names)) != len(names):
        return fail(path, f"{where}.metrics has duplicate names")
    return True


def validate_critical_path(path, cp, where):
    """Checks one cell's v6 critical_path object (see module docstring)."""
    at = f"{where}.critical_path"
    if not isinstance(cp, dict):
        return fail(path, f"{at} is not an object")
    for key in ("considered", "found", "truncated"):
        if not isinstance(cp.get(key), int) or cp[key] < 0:
            return fail(path, f"{at}.{key} must be a non-negative integer")
    if not cp["truncated"] <= cp["found"] <= cp["considered"]:
        return fail(path, f"{at}: want truncated <= found <= considered, "
                          f"got {cp['truncated']} / {cp['found']} / "
                          f"{cp['considered']}")
    for key in CRITICAL_PATH_SUMMARIES:
        if key not in cp:
            return fail(path, f"{at} missing summary '{key}'")
        if not check_fields(path, cp[key], SUMMARY_FIELDS, f"{at}.{key}"):
            return False
        if cp[key]["count"] != cp["found"]:
            return fail(path, f"{at}.{key}.count {cp[key]['count']} != "
                              f"found {cp['found']}")
    top = cp.get("top_channels")
    if not isinstance(top, list) or len(top) > MAX_TOP_CHANNELS:
        return fail(path, f"{at}.top_channels must be a list of at most "
                          f"{MAX_TOP_CHANNELS} entries")
    for j, entry in enumerate(top):
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("edge"), int) or \
                not isinstance(entry.get("hops"), int) or \
                not isinstance(entry.get("delay"), (int, float)):
            return fail(path, f"{at}.top_channels[{j}] malformed "
                              "(want int edge, int hops, numeric delay)")
    deltas = [entry["delay"] for entry in top]
    if deltas != sorted(deltas, reverse=True):
        return fail(path, f"{at}.top_channels not descending by delay")
    has_worst = "worst" in cp
    if has_worst != (cp["found"] > 0):
        return fail(path, f"{at}.worst must be present exactly when "
                          f"found > 0 (found {cp['found']})")
    if has_worst:
        worst = cp["worst"]
        if not isinstance(worst, dict) or \
                not isinstance(worst.get("seed"), int) or \
                worst["seed"] < 0 or \
                not isinstance(worst.get("span"), (int, float)):
            return fail(path, f"{at}.worst malformed (want non-negative "
                              "int seed, numeric span)")
    return True


def validate_timeseries(path, ts, where):
    """Checks one cell's optional v6 timeseries object."""
    at = f"{where}.timeseries"
    if not isinstance(ts, dict):
        return fail(path, f"{at} is not an object")
    if not isinstance(ts.get("interval"), (int, float)) or \
            ts["interval"] <= 0:
        return fail(path, f"{at}.interval must be > 0")
    if not isinstance(ts.get("trials"), int) or ts["trials"] < 1:
        return fail(path, f"{at}.trials must be >= 1")
    samples = ts.get("samples")
    if not isinstance(samples, list):
        return fail(path, f"{at}.samples must be a list")
    last_t = 0.0
    for j, sample in enumerate(samples):
        if not isinstance(sample, dict):
            return fail(path, f"{at}.samples[{j}] is not an object")
        for key in ("t", "pending", "in_flight", "live"):
            if not isinstance(sample.get(key), (int, float)):
                return fail(path, f"{at}.samples[{j}] missing numeric "
                                  f"'{key}'")
        if sample["t"] <= last_t:
            return fail(path, f"{at}.samples not ascending in t at [{j}]")
        last_t = sample["t"]
    return True


def validate(path, doc):
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        return fail(path, f"schema is {schema!r}, want one of {SCHEMAS}")
    v3 = schema != "abe-scenario-sweep-v2"
    v4 = schema in ("abe-scenario-sweep-v4", "abe-scenario-sweep-v5",
                    "abe-scenario-sweep-v6", "abe-scenario-sweep-v7")
    v5 = schema in ("abe-scenario-sweep-v5", "abe-scenario-sweep-v6",
                    "abe-scenario-sweep-v7")
    v6 = schema in ("abe-scenario-sweep-v6", "abe-scenario-sweep-v7")
    v7 = schema == "abe-scenario-sweep-v7"
    runtimes = RUNTIMES_V7 if v7 else RUNTIMES
    wall_fields = WALL_FIELDS_V7 if v7 else WALL_FIELDS
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        return fail(path, "metadata is not an object")
    metadata_fields = dict(METADATA_FIELDS)
    if v3:
        metadata_fields["runtime"] = str
    if not check_fields(path, metadata, metadata_fields, "metadata"):
        return False
    if v3 and metadata["runtime"] not in runtimes:
        return fail(path, f"metadata.runtime {metadata['runtime']!r} not in "
                          f"{runtimes}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        return fail(path, "cells must be a non-empty array")
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            return fail(path, f"{where} is not an object")
        cell_fields = dict(CELL_FIELDS)
        if v3:
            cell_fields["runtime"] = str
        if v4:
            cell_fields["behavior"] = str
            cell_fields["adversary"] = str
            cell_fields["stalled"] = int
            cell_fields["violation_seeds"] = list
        if v5:
            cell_fields["metrics"] = list
            cell_fields["wall"] = dict
        if v6:
            cell_fields["critical_path"] = dict
        if not check_fields(path, cell, cell_fields, where):
            return False
        if v5:
            if not validate_metrics(path, cell["metrics"], where):
                return False
            if not check_fields(path, cell["wall"], wall_fields,
                                f"{where}.wall"):
                return False
        if v6:
            if not validate_critical_path(path, cell["critical_path"],
                                          where):
                return False
            if "timeseries" in cell and \
                    not validate_timeseries(path, cell["timeseries"], where):
                return False
        if v3 and cell["runtime"] not in runtimes:
            return fail(path, f"{where}.runtime {cell['runtime']!r} not in "
                              f"{runtimes}")
        topo = cell["topology"]
        if not isinstance(topo.get("family"), str) or \
                not isinstance(topo.get("n"), int) or topo["n"] < 1:
            return fail(path, f"{where}.topology malformed")
        for summary_key in ("messages", "time"):
            if not check_fields(path, cell[summary_key], SUMMARY_FIELDS,
                                f"{where}.{summary_key}"):
                return False
        # v4 splits stalled trials (quiescent with no way forward) out of
        # failures (still working at the deadline); completed is what's left.
        stalled = cell["stalled"] if v4 else 0
        completed = cell["trials"] - cell["failures"] - stalled
        if cell["messages"]["count"] != completed:
            return fail(path, f"{where}: summary count "
                              f"{cell['messages']['count']} != completed "
                              f"trials {completed}")
        if v4:
            seeds = cell["violation_seeds"]
            if not all(isinstance(s, int) and s >= 0 for s in seeds):
                return fail(path, f"{where}.violation_seeds must be "
                                  "non-negative integers")
            expect = min(cell["safety_violations"], MAX_EMITTED_SEEDS)
            if len(seeds) != expect:
                return fail(path, f"{where}: violation_seeds has "
                                  f"{len(seeds)} entries, want {expect} "
                                  f"(count {cell['safety_violations']}, "
                                  f"emit cap {MAX_EMITTED_SEEDS})")
        if cell["safety_violations"] != 0:
            return fail(path, f"{where} ({cell['cell']}): "
                              f"{cell['safety_violations']} safety "
                              "violation(s) — a correctness bug, not noise")
    print(f"{path}: ok ({len(cells)} cells, "
          f"sha {metadata['git_sha']}, {metadata['compiler']})")
    return True


# ---------------------------------------------------------------------------
# Self-test fixtures


def _summary(count=1, value=1.0):
    return {"count": count, "mean": value, "stddev": 0.0, "min": value,
            "max": value, "ci95": 0.0}


def _fixture_v7():
    """A minimal document every v7 check accepts (udp cell, total_ms)."""
    cp = {"considered": 1, "found": 1, "truncated": 0,
          "top_channels": [{"edge": 3, "hops": 1, "delay": 2.0},
                           {"edge": 1, "hops": 1, "delay": 1.0}],
          "worst": {"seed": 7, "span": 4.0}}
    for key in CRITICAL_PATH_SUMMARIES:
        cp[key] = _summary()
    return {
        "schema": "abe-scenario-sweep-v7",
        "metadata": {"git_sha": "deadbeef", "compiler": "cc",
                     "build_type": "Release", "equeue": "auto",
                     "runtime": "udp", "trial_threads": 1, "trials": 1,
                     "seed_base": 1},
        "cells": [{
            "cell": "abe-ring/ring-uni-4/exponential/ideal/none/rt-udp/arq",
            "scenario": "fixture", "algorithm": "abe-ring",
            "topology": {"family": "ring-uni", "n": 4, "param": 0},
            "delay": {"model": "exponential", "mean": 1.0},
            "clock": {"s_low": 1, "s_high": 1, "drift": "ideal"},
            "failure": "none", "behavior": "honest", "adversary": "none",
            "equeue": "auto", "runtime": "udp",
            "trials": 1, "failures": 0, "stalled": 0,
            "safety_violations": 0, "violation_seeds": [],
            "messages": _summary(), "time": _summary(),
            "metrics": [{"name": "net.sent", "kind": "counter",
                         "value": 8}],
            "wall": {"build_ms": 0.1, "run_ms": 1.0, "settle_ms": 0.2,
                     "total_ms": 1.3},
            "critical_path": cp,
            "timeseries": {"interval": 5.0, "trials": 1,
                           "samples": [{"t": 5.0, "pending": 4.0,
                                        "in_flight": 1.0, "live": 4.0},
                                       {"t": 10.0, "pending": 3.0,
                                        "in_flight": 0.5, "live": 2.0}]},
        }],
    }


def _downgrade(doc, schema):
    """Derives an older-schema fixture by stripping the newer blocks."""
    doc = json.loads(json.dumps(doc))
    doc["schema"] = schema
    # Pre-v7 schemas have no "udp" runtime value and no wall total — a v6
    # fixture must be one a v6 emitter could have produced.
    doc["metadata"]["runtime"] = "sim"
    for cell in doc["cells"]:
        cell["runtime"] = "sim"
        cell["cell"] = "abe-ring/ring-uni-4/exponential/ideal/none"
        if "wall" in cell:
            cell["wall"].pop("total_ms", None)
        if schema in ("abe-scenario-sweep-v2", "abe-scenario-sweep-v3",
                      "abe-scenario-sweep-v4", "abe-scenario-sweep-v5"):
            cell.pop("timeseries", None)
            cell.pop("critical_path", None)
        if schema in ("abe-scenario-sweep-v2", "abe-scenario-sweep-v3",
                      "abe-scenario-sweep-v4"):
            cell.pop("metrics", None)
            cell.pop("wall", None)
        if schema in ("abe-scenario-sweep-v2", "abe-scenario-sweep-v3"):
            for key in ("behavior", "adversary", "stalled",
                        "violation_seeds"):
                cell.pop(key, None)
        if schema == "abe-scenario-sweep-v2":
            cell.pop("runtime", None)
    if schema == "abe-scenario-sweep-v2":
        doc["metadata"].pop("runtime", None)
    return doc


def self_test():
    """Validates the built-in fixtures; returns 0 on success, 1 on failure."""
    failures = 0

    def expect(name, doc, want_ok):
        nonlocal failures
        got_ok = validate(f"self-test:{name}", doc)
        if got_ok != want_ok:
            print(f"self-test:{name}: want "
                  f"{'accept' if want_ok else 'reject'}, got "
                  f"{'accept' if got_ok else 'reject'}", file=sys.stderr)
            failures += 1

    # Every schema version must still validate.
    good = _fixture_v7()
    expect("v7", good, True)
    for schema in SCHEMAS[:-1]:
        expect(schema.rsplit("-", 1)[-1], _downgrade(good, schema), True)

    # A v6 document without the causal block — and a v6/v7 block that is
    # malformed in each of the ways the emitter cannot produce — must be
    # rejected.
    def mutated(mutate):
        doc = _fixture_v7()
        mutate(doc["cells"][0])
        return doc

    # v7-specific rejections: the udp runtime value and the wall total are
    # v7-only, and unknown runtime strings stay unknown.
    v6_forged_udp = _downgrade(good, "abe-scenario-sweep-v6")
    v6_forged_udp["cells"][0]["runtime"] = "udp"
    expect("v6-claims-udp-runtime", v6_forged_udp, False)
    expect("v7-wall-missing-total-ms",
           mutated(lambda c: c["wall"].pop("total_ms")), False)
    expect("v7-unknown-runtime",
           mutated(lambda c: c.update(runtime="quic")), False)

    expect("v6-missing-critical-path",
           mutated(lambda c: c.pop("critical_path")), False)
    expect("v6-counts-inverted",
           mutated(lambda c: c["critical_path"].update(found=2)), False)
    expect("v6-missing-summary",
           mutated(lambda c: c["critical_path"].pop("queueing")), False)
    expect("v6-summary-count-mismatch",
           mutated(lambda c: c["critical_path"]["span"].update(count=9)),
           False)
    expect("v6-top-channels-unsorted",
           mutated(lambda c: c["critical_path"]["top_channels"].reverse()),
           False)
    expect("v6-worst-without-found",
           mutated(lambda c: c["critical_path"].update(
               found=0, truncated=0,
               **{k: _summary(count=0, value=0.0)
                  for k in CRITICAL_PATH_SUMMARIES})), False)
    expect("v6-worst-negative-seed",
           mutated(lambda c: c["critical_path"]["worst"].update(seed=-1)),
           False)
    expect("v6-timeseries-bad-interval",
           mutated(lambda c: c["timeseries"].update(interval=0)), False)
    expect("v6-timeseries-unordered",
           mutated(lambda c: c["timeseries"]["samples"].reverse()), False)

    if failures:
        print(f"self-test: {failures} fixture(s) misjudged", file=sys.stderr)
        return 1
    print("self-test: ok")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    ok = True
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: cannot read: {err}", file=sys.stderr)
            return 2
        ok = validate(path, doc) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
