// E12 — Event-queue backends: the cross-backend grid behind the scheduler.
//
// The equeue subsystem (src/sim/equeue/) exists because the comparison
// heap's O(log n) pop was the simulator's binding constraint at n >= 10^4
// (ROADMAP "Scheduler scalability"). This bench measures the backends
// themselves — heap, calendar, ladder — through the EventQueue interface
// under the three canonical mixes, across pending-set sizes:
//
//   hold  — steady state: pop the minimum, push a successor (message
//           traffic in flight). Delay deltas are PRE-SAMPLED so the table
//           prices the queue, not the RNG.
//   drain — bulk schedule then run dry (startup bursts, settle windows).
//   churn — schedule/cancel pairs over a large passive pending set (ARQ
//           retransmission timers at scale).
//
// Acceptance (ISSUE 4): at 65536 pending events, the best O(1) backend
// must sustain >= 2x the heap's hold events/s — the experiment table
// prints the ratio directly. The microbenchmarks below track the same
// grid in the committed baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "sim/equeue/event_queue.h"
#include "sim/rng.h"
#include "stats/table.h"

namespace abe {
namespace {

std::uint64_t bits_of(double t) {
  std::uint64_t b;
  std::memcpy(&b, &t, sizeof(b));
  return b;
}

constexpr EqueueBackend kBackends[] = {
    EqueueBackend::kHeap, EqueueBackend::kCalendar, EqueueBackend::kLadder};

// Pre-sampled exponential(1) deltas, reused round-robin.
const std::vector<double>& delta_table() {
  static const std::vector<double> kDeltas = [] {
    std::vector<double> d(1 << 20);
    Rng rng(42);
    for (double& x : d) x = rng.exponential(1.0);
    return d;
  }();
  return kDeltas;
}

// Steady-state hold throughput (events/s) at `pending` live events.
double hold_events_per_sec(EqueueBackend backend, std::size_t pending,
                           std::uint64_t events) {
  const std::vector<double>& deltas = delta_table();
  std::size_t di = 0;
  const auto next_delta = [&] {
    const double d = deltas[di];
    di = (di + 1) & (deltas.size() - 1);
    return d;
  };
  auto q = make_event_queue(backend);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    q->push(QueueEntry{bits_of(next_delta()), seq,
                       static_cast<std::uint32_t>(seq)});
    ++seq;
  }
  for (std::uint64_t i = 0; i < events / 4; ++i) {  // warm the structure
    const QueueEntry e = q->pop_min();
    q->push(QueueEntry{bits_of(entry_time(e) + next_delta()), seq++, e.slot});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events; ++i) {
    const QueueEntry e = q->pop_min();
    q->push(QueueEntry{bits_of(entry_time(e) + next_delta()), seq++, e.slot});
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(events) / secs;
}

// Bulk-schedule then run dry; events/s over the push+pop round trip.
double drain_events_per_sec(EqueueBackend backend, std::size_t batch) {
  Rng rng(42);
  auto q = make_event_queue(backend);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < batch; ++s) {
    q->push(QueueEntry{bits_of(rng.uniform01() * 1000.0), s,
                       static_cast<std::uint32_t>(s)});
  }
  while (!q->empty()) q->pop_min();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(batch) / secs;
}

// Schedule/cancel pairs over a passive pending set; pairs/s.
double churn_pairs_per_sec(EqueueBackend backend, std::size_t pending,
                           std::uint64_t pairs) {
  Rng rng(7);
  auto q = make_event_queue(backend);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    q->push(QueueEntry{bits_of(1000.0 + rng.uniform01()), seq,
                       static_cast<std::uint32_t>(seq)});
    ++seq;
  }
  const std::uint32_t churn_slot = static_cast<std::uint32_t>(seq);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    q->push(QueueEntry{bits_of(1.0 + rng.uniform01()), seq++, churn_slot});
    q->erase_slot(churn_slot);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(pairs) / secs;
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E12",
               "an O(1)-amortized event queue unlocks n >= 10^4 sweeps: the "
               "calendar/ladder backends must beat the heap's O(log n) pop "
               "by >= 2x on the hold mix at 65k pending");

  Table table({"mix", "pending", "backend", "events/s", "vs heap"});
  constexpr std::uint64_t kHoldEvents = 1u << 21;
  constexpr std::uint64_t kChurnPairs = 1u << 20;
  double heap_hold_65k = 0.0;
  double best_hold_65k = 0.0;
  for (std::size_t pending : {4096u, 16384u, 65536u}) {
    double heap_rate = 0.0;
    for (EqueueBackend backend : kBackends) {
      // Best of 3: the table is an acceptance gate, so shave scheduler
      // noise the way perf comparisons normally do.
      double rate = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        rate = std::max(rate, hold_events_per_sec(backend, pending,
                                                  kHoldEvents));
      }
      if (backend == EqueueBackend::kHeap) heap_rate = rate;
      if (pending == 65536u) {
        if (backend == EqueueBackend::kHeap) heap_hold_65k = rate;
        best_hold_65k = std::max(best_hold_65k, rate);
      }
      table.add_row({"hold", Table::fmt_int(static_cast<std::int64_t>(
                                 pending)),
                     equeue_backend_name(backend), Table::fmt(rate, 0),
                     Table::fmt(rate / heap_rate, 2)});
    }
  }
  for (std::size_t batch : {16384u, 65536u}) {
    double heap_rate = 0.0;
    for (EqueueBackend backend : kBackends) {
      double rate = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        rate = std::max(rate, drain_events_per_sec(backend, batch));
      }
      if (backend == EqueueBackend::kHeap) heap_rate = rate;
      table.add_row({"drain", Table::fmt_int(static_cast<std::int64_t>(
                                  batch)),
                     equeue_backend_name(backend), Table::fmt(rate, 0),
                     Table::fmt(rate / heap_rate, 2)});
    }
  }
  for (std::size_t pending : {16384u, 65536u}) {
    double heap_rate = 0.0;
    for (EqueueBackend backend : kBackends) {
      double rate = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        rate = std::max(rate, churn_pairs_per_sec(backend, pending,
                                                  kChurnPairs));
      }
      if (backend == EqueueBackend::kHeap) heap_rate = rate;
      table.add_row({"churn", Table::fmt_int(static_cast<std::int64_t>(
                                  pending)),
                     equeue_backend_name(backend), Table::fmt(rate, 0),
                     Table::fmt(rate / heap_rate, 2)});
    }
  }
  std::printf("%s\n",
              table.render("E12: event-queue backend grid").c_str());
  std::printf(
      "acceptance: best hold events/s at 65536 pending = %.2fx heap "
      "(>= 2x required)\n\n",
      best_hold_65k / heap_hold_65k);
}

}  // namespace benchutil

// --- microbenchmarks (the tracked perf trajectory) -------------------------

namespace {

void backend_args(benchmark::internal::Benchmark* b) {
  for (int backend = 0; backend < 3; ++backend) {
    for (int pending : {4096, 16384, 65536}) {
      b->Args({pending, backend});
    }
  }
  b->ArgNames({"pending", "be"});
}

EqueueBackend backend_of(std::int64_t index) {
  return kBackends[static_cast<std::size_t>(index)];
}

}  // namespace

// Steady-state hold through the raw EventQueue interface.
static void BM_EqueueHold(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  auto q = make_event_queue(backend_of(state.range(1)));
  const std::vector<double>& deltas = delta_table();
  std::size_t di = 0;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    q->push(QueueEntry{bits_of(deltas[di]), seq,
                       static_cast<std::uint32_t>(seq)});
    di = (di + 1) & (deltas.size() - 1);
    ++seq;
  }
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) {
      const QueueEntry e = q->pop_min();
      q->push(
          QueueEntry{bits_of(entry_time(e) + deltas[di]), seq++, e.slot});
      di = (di + 1) & (deltas.size() - 1);
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EqueueHold)->Apply(backend_args);

// Bulk schedule + run dry.
static void BM_EqueueDrain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    auto q = make_event_queue(backend_of(state.range(1)));
    for (std::uint64_t s = 0; s < batch; ++s) {
      q->push(QueueEntry{bits_of(rng.uniform01() * 1000.0), s,
                         static_cast<std::uint32_t>(s)});
    }
    while (!q->empty()) {
      benchmark::DoNotOptimize(q->pop_min());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EqueueDrain)->Apply(backend_args);

// Schedule/cancel churn over a passive pending set. Items = pairs.
static void BM_EqueueChurn(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  auto q = make_event_queue(backend_of(state.range(1)));
  Rng rng(7);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    q->push(QueueEntry{bits_of(1000.0 + rng.uniform01()), seq,
                       static_cast<std::uint32_t>(seq)});
    ++seq;
  }
  const auto churn_slot = static_cast<std::uint32_t>(seq);
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) {
      q->push(QueueEntry{bits_of(1.0 + rng.uniform01()), seq++, churn_slot});
      benchmark::DoNotOptimize(q->erase_slot(churn_slot));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EqueueChurn)->Apply(backend_args);

}  // namespace abe

ABE_BENCH_MAIN()
