// E5 — Only the *bound on the expected delay* matters.
//
// Paper claim (Section 2): the ABE model assumes nothing about the delay
// law beyond a bound on its mean — algorithms must behave comparably under
// any distribution honouring that bound. This bench runs the election at
// n = 64 under eight delay laws, all normalised to mean 1 (the same δ),
// from the degenerate ABD case (fixed) to a heavy-tailed Lomax with
// infinite variance and the paper's retransmission channel.
#include <algorithm>

#include "bench_util.h"
#include "core/harness.h"
#include "net/delay.h"

namespace abe {
namespace {

constexpr std::size_t kN = 64;
constexpr std::uint64_t kTrials = 20;

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E5",
               "election cost depends on the delay law only through its "
               "mean: all rows share delta = 1 and stay within a small "
               "factor of each other");

  Table table({"delay_model", "bounded", "msgs", "msgs_ci", "msgs/n", "time",
               "time/n", "failures"});
  double min_msgs = 1e18, max_msgs = 0;
  for (const auto& name : standard_delay_model_names()) {
    ElectionExperiment e;
    e.n = kN;
    e.delay_name = name;
    e.mean_delay = 1.0;
    e.election.a0 = linear_regime_a0(kN);
    const auto agg = run_election_trials(e, kTrials, 250);
    const auto model = make_delay_model(name, 1.0);
    min_msgs = std::min(min_msgs, agg.messages.mean());
    max_msgs = std::max(max_msgs, agg.messages.mean());
    table.add_row({name, model->bounded() ? "yes" : "no",
                   Table::fmt(agg.messages.mean(), 1),
                   Table::fmt(agg.messages.ci95_half_width(), 1),
                   Table::fmt(agg.messages.mean() / kN, 2),
                   Table::fmt(agg.time.mean(), 1),
                   Table::fmt(agg.time.mean() / kN, 2),
                   Table::fmt_int(static_cast<std::int64_t>(agg.failures))});
  }
  std::printf(
      "%s\n",
      table.render("E5: delay-law sweep at n = 64, all means = 1").c_str());
  std::printf("max/min message ratio across laws: %.2f (claim: O(1), "
              "typically < 2)\n\n",
              max_msgs / min_msgs);
}

}  // namespace benchutil

static void BM_ElectionUnderLaw(benchmark::State& state) {
  const auto& names = standard_delay_model_names();
  const auto& name = names[static_cast<std::size_t>(state.range(0))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = kN;
    e.delay_name = name;
    e.election.a0 = linear_regime_a0(kN);
    e.seed = seed++;
    benchmark::DoNotOptimize(run_election(e).messages);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_ElectionUnderLaw)->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
