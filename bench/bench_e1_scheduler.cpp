// E1 — Scheduler hot path: events/s under the workloads the simulator
// actually generates.
//
// The paper's results are Monte-Carlo estimates over many independent
// election trials, so simulator events/s is the binding constraint on every
// experiment downstream (ROADMAP "Scheduler scalability"). This bench pins
// the scheduler's throughput under four mixes:
//
//   hold    — classic hold model: steady-state pending set, each event
//             schedules its successor (message traffic in flight).
//   drain   — schedule a batch at random times, run it dry (startup bursts,
//             settle windows).
//   churn   — schedule/cancel cycles with the occasional live event (ARQ
//             retransmission timers that almost always get cancelled). The
//             pre-overhaul lazy-deletion design left a stale heap entry per
//             cancel; direct cancellation keeps the heap exactly live-sized.
//   arq mix — paired data+timeout events where delivery cancels the timeout,
//             the end-to-end shape of net/arq.h.
//
// Plus one end-to-end row: a full ring election (the real consumer).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/harness.h"
#include "sim/equeue/backend.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "stats/table.h"

namespace abe {
namespace {

// Self-rescheduling event: the steady-state "hold" workload. 16 bytes, so it
// exercises the no-allocation inline path of the scheduler's action storage.
struct HoldEvent {
  Scheduler* s;
  Rng* rng;
  void operator()() const { s->schedule_in(rng->exponential(1.0), *this); }
};

void prefill_hold(Scheduler& s, Rng& rng, std::size_t pending) {
  for (std::size_t i = 0; i < pending; ++i) {
    s.schedule_in(rng.exponential(1.0), HoldEvent{&s, &rng});
  }
}

// Second benchmark argument for the scheduler mixes: which event-queue
// backend the Scheduler is constructed with (sim/equeue). 0 = auto (the
// production default), 1..3 pin a concrete backend; results are
// bit-identical, only throughput differs (bench_e12 tracks the raw-queue
// grid, these rows track the same choice seen through the full scheduler).
constexpr EqueueBackend kBenchBackends[] = {
    EqueueBackend::kAuto, EqueueBackend::kHeap, EqueueBackend::kCalendar,
    EqueueBackend::kLadder};

EqueueBackend bench_backend(std::int64_t index) {
  return kBenchBackends[static_cast<std::size_t>(index)];
}

// Small sizes stay on the auto default (their historical rows); the 16k
// and 65k points fan out across every backend (ISSUE 4 satellite).
void scheduler_mix_args(benchmark::internal::Benchmark* b,
                        std::initializer_list<int> small_sizes) {
  for (int pending : small_sizes) b->Args({pending, 0});
  for (int pending : {16384, 65536}) {
    for (int backend = 1; backend <= 3; ++backend) {
      b->Args({pending, backend});
    }
  }
  b->ArgNames({"pending", "be"});
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E1",
               "simulator events/s bounds every Monte-Carlo estimate; "
               "direct cancellation keeps churny workloads heap-bounded");

  Table table({"workload", "pending", "events", "seconds", "events/s"});
  const auto time_events = [&](const char* name, std::size_t pending,
                               std::uint64_t events, auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.add_row({name, Table::fmt_int(static_cast<std::int64_t>(pending)),
                   Table::fmt_int(static_cast<std::int64_t>(events)),
                   Table::fmt(secs, 3),
                   Table::fmt(static_cast<double>(events) / secs, 0)});
  };

  constexpr std::uint64_t kHoldEvents = 1u << 21;
  for (std::size_t pending : {64u, 4096u, 65536u}) {
    Scheduler s;
    Rng rng(42);
    prefill_hold(s, rng, pending);
    time_events("hold", pending, kHoldEvents,
                [&] { s.run_steps(kHoldEvents); });
  }
  // The same steady-state mix per pinned backend at the scales where the
  // heap bends (the e12 grid shows the raw-queue view of the same choice).
  for (EqueueBackend backend :
       {EqueueBackend::kHeap, EqueueBackend::kCalendar,
        EqueueBackend::kLadder}) {
    for (std::size_t pending : {16384u, 65536u}) {
      Scheduler s(backend);
      Rng rng(42);
      prefill_hold(s, rng, pending);
      const std::string label =
          std::string("hold/") + equeue_backend_name(backend);
      time_events(label.c_str(), pending, kHoldEvents,
                  [&] { s.run_steps(kHoldEvents); });
    }
  }

  {
    constexpr std::uint64_t kChurn = 1u << 20;
    Scheduler s;
    Rng rng(7);
    time_events("churn", 1, kChurn, [&] {
      for (std::uint64_t i = 0; i < kChurn; ++i) {
        const EventId id = s.schedule_in(1.0 + rng.uniform01(), [] {});
        s.cancel(id);
        if ((i & 1023u) == 0u) {
          s.schedule_in(rng.uniform01(), [] {});
          s.run_steps(1);
        }
      }
    });
  }

  std::printf("%s\n", table.render("E1: scheduler throughput").c_str());

  // Trial-level parallelism: identical aggregates, wall-clock divided by
  // the pool (near-linear up to hardware threads on multi-core hosts).
  const unsigned hw = std::thread::hardware_concurrency();
  Table trials_table({"threads", "trials", "seconds", "trials/s"});
  constexpr std::uint64_t kTrials = 64;
  for (unsigned threads : {1u, hw == 0 ? 1u : hw}) {
    ElectionExperiment e;
    e.n = 64;
    e.election.a0 = linear_regime_a0(64);
    const auto t0 = std::chrono::steady_clock::now();
    const auto agg = run_election_trials(e, kTrials, 1, threads);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    trials_table.add_row(
        {Table::fmt_int(threads), Table::fmt_int(static_cast<std::int64_t>(
                                      agg.trials)),
         Table::fmt(secs, 3),
         Table::fmt(static_cast<double>(agg.trials) / secs, 1)});
    if (hw <= 1) break;
  }
  std::printf("%s\n",
              trials_table
                  .render("E1b: election trial throughput (n=64, "
                          "run_election_trials pool)")
                  .c_str());
}

}  // namespace benchutil

// --- microbenchmarks (the tracked perf trajectory) -------------------------

// The acceptance workload: mixed schedule/run at a steady pending set.
static void BM_SchedulerHold(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kBatch = 4096;
  Scheduler s(bench_backend(state.range(1)));
  Rng rng(42);
  prefill_hold(s, rng, pending);
  for (auto _ : state) {
    s.run_steps(kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_SchedulerHold)->Apply([](benchmark::internal::Benchmark* b) {
  scheduler_mix_args(b, {64, 4096});
});

// Batch schedule then drain: startup bursts and settle windows.
static void BM_SchedulerDrain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    Scheduler s(bench_backend(state.range(1)));
    for (std::size_t i = 0; i < batch; ++i) {
      s.schedule_at(rng.uniform01() * 1000.0, [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SchedulerDrain)->Apply([](benchmark::internal::Benchmark* b) {
  scheduler_mix_args(b, {4096});
});

// Schedule/cancel churn: nearly every event is cancelled before it fires,
// layered over a passive pending set of size range(0) (0 = the historical
// bare-churn row). Items = schedule+cancel pairs.
static void BM_SchedulerChurn(benchmark::State& state) {
  constexpr std::uint64_t kBatch = 4096;
  const auto pending = static_cast<std::size_t>(state.range(0));
  Scheduler s(bench_backend(state.range(1)));
  Rng rng(7);
  for (std::size_t i = 0; i < pending; ++i) {
    s.schedule_at(1e9 + static_cast<double>(i), [] {});
  }
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      const EventId id = s.schedule_in(1.0 + rng.uniform01(), [] {});
      benchmark::DoNotOptimize(s.cancel(id));
      if ((i & 255u) == 0u) {
        s.schedule_in(rng.uniform01() * 0.5, [] {});
        s.run_steps(1);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_SchedulerChurn)->Apply([](benchmark::internal::Benchmark* b) {
  scheduler_mix_args(b, {0});
});

// ARQ-shaped mix: a delivery event cancels its paired retransmission timer
// and schedules the next pair. Items = events run (half the schedules).
static void BM_SchedulerArqMix(benchmark::State& state) {
  const auto pairs = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kBatch = 4096;
  Scheduler s;
  Rng rng(11);
  std::vector<EventId> timeouts(pairs);
  std::function<void(std::size_t)> send = [&](std::size_t i) {
    timeouts[i] = s.schedule_in(10.0, [] {});  // retransmission timer
    s.schedule_in(rng.exponential(1.0), [&s, &send, &timeouts, i] {
      s.cancel(timeouts[i]);  // ack arrived: timer almost always pending
      send(i);
    });
  };
  for (std::size_t i = 0; i < pairs; ++i) send(i);
  for (auto _ : state) {
    s.run_steps(kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_SchedulerArqMix)->Arg(256)->Arg(8192);

// Trial-level parallelism: wall-clock throughput of the Monte-Carlo outer
// loop. Aggregates are bit-identical across thread counts (see
// test_harness_parallel), so this is pure speedup; real time is what
// matters, CPU time sums the workers.
static void BM_TrialThroughput(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  constexpr std::uint64_t kTrials = 32;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = 64;
    e.election.a0 = linear_regime_a0(64);
    const auto agg = run_election_trials(e, kTrials, seed, threads);
    benchmark::DoNotOptimize(agg.trials);
    seed += kTrials;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_TrialThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// End-to-end: one full ring election per iteration (the real consumer of
// the scheduler; e2/e3 sweep this across sizes and models).
static void BM_SchedulerElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = n;
    e.election.a0 = linear_regime_a0(n);
    e.seed = seed++;
    const auto result = run_election(e);
    benchmark::DoNotOptimize(result.messages);
  }
}
BENCHMARK(BM_SchedulerElection)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
