// E6 — Theorem 1: synchronising an ABE network costs ≥ n messages/round.
//
// Three sub-tables:
//  (a) the α-synchronizer (correct on any asynchronous network, hence on
//      ABE) sends exactly |E| messages per round; on a unidirectional ring
//      that is exactly n — it meets the paper's lower bound with equality,
//      and no strongly-connected digraph goes below n;
//  (b) the ABD synchronizer of Tel–Korach–Zaks runs with ZERO overhead
//      messages — legal only when a sure delay bound exists: on fixed
//      (ABD) delays it reproduces the reference execution perfectly;
//  (c) on genuine ABE delays the ABD synchronizer's assumed bound P = c·δ
//      is overshot with probability ~e^{-c} per message: the violation rate
//      and output corruption it causes are charted per period multiplier
//      and per delay law, plus a clock-drift row (Definition 1(2)).
#include <vector>

#include "bench_util.h"
#include "net/topology.h"
#include "syncr/abd_sync.h"
#include "syncr/alpha.h"
#include "syncr/apps.h"

namespace abe {
namespace {

constexpr std::uint64_t kRounds = 30;

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E6",
               "Theorem 1: no synchroniser for ABE networks uses fewer than "
               "n messages/round; the cheaper ABD synchroniser breaks on "
               "ABE delays");

  // (a) alpha synchronizer message floor.
  Table alpha({"topology", "n", "edges", "msgs/round", ">=n"});
  struct Shape {
    const char* label;
    Topology topology;
  };
  const Shape shapes[] = {
      {"uni-ring(8)", unidirectional_ring(8)},
      {"uni-ring(32)", unidirectional_ring(32)},
      {"uni-ring(128)", unidirectional_ring(128)},
      {"grid(6x6)", grid(6, 6)},
      {"torus(6x6)", torus(6, 6)},
      {"complete(16)", complete(16)},
  };
  for (const auto& shape : shapes) {
    const auto result = run_alpha_synchronizer(
        shape.topology, counter_app_factory(), kRounds,
        exponential_delay(1.0), 7);
    alpha.add_row(
        {shape.label, Table::fmt_int(static_cast<std::int64_t>(shape.topology.n)),
         Table::fmt_int(static_cast<std::int64_t>(shape.topology.edge_count())),
         Table::fmt(result.messages_per_round, 1),
         result.messages_per_round >= static_cast<double>(shape.topology.n)
             ? "yes"
             : "NO (bound violated!)"});
  }
  std::printf("%s\n",
              alpha.render("E6a: alpha synchronizer messages per round "
                           "(lower bound n; ring meets it with equality)")
                  .c_str());

  // (b) ABD synchronizer on a true ABD network.
  Table abd({"delay", "period_mult", "msgs/round", "late", "outputs_ok"});
  for (double mult : {1.25, 2.0}) {
    const auto r = run_abd_synchronizer(bidirectional_ring(16),
                                        broadcast_app_factory(0), kRounds,
                                        fixed_delay(1.0), mult, 11);
    abd.add_row({"fixed(1.0)", Table::fmt(mult, 2),
                 Table::fmt(r.messages_per_round, 2),
                 Table::fmt_int(static_cast<std::int64_t>(r.late_messages)),
                 r.outputs_match_reference ? "yes" : "NO"});
  }
  {
    const auto r = run_abd_synchronizer(bidirectional_ring(16),
                                        counter_app_factory(), kRounds,
                                        fixed_delay(1.0), 1.25, 11);
    abd.add_row({"fixed(1.0)+silent app", "1.25",
                 Table::fmt(r.messages_per_round, 2),
                 Table::fmt_int(static_cast<std::int64_t>(r.late_messages)),
                 r.outputs_match_reference ? "yes" : "NO"});
  }
  std::printf("%s\n",
              abd.render("E6b: ABD synchronizer on an ABD network — zero "
                         "overhead, still correct (impossible on ABE)")
                  .c_str());

  // (c) ABD synchronizer on ABE networks: violation rates.
  Table viol({"delay_law", "period_mult", "late_msgs", "late_frac",
              "runs_corrupted/10"});
  const struct {
    const char* label;
    DelayModelPtr delay;
  } laws[] = {
      {"exponential(1)", exponential_delay(1.0)},
      {"lomax(2.5, mean 1)", lomax_delay(2.5, 1.0)},
      {"georetx(p=.5)", geometric_retransmission_delay(0.5, 0.5)},
  };
  for (const auto& law : laws) {
    for (double mult : {1.0, 2.0, 4.0, 8.0}) {
      std::uint64_t late = 0, msgs = 0;
      int corrupted = 0;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto r = run_abd_synchronizer(bidirectional_ring(16),
                                            broadcast_app_factory(0),
                                            kRounds, law.delay, mult, seed);
        late += r.late_messages;
        msgs += r.messages_total;
        corrupted += r.outputs_match_reference ? 0 : 1;
      }
      viol.add_row({law.label, Table::fmt(mult, 1),
                    Table::fmt_int(static_cast<std::int64_t>(late)),
                    Table::fmt(msgs == 0 ? 0.0
                                         : static_cast<double>(late) /
                                               static_cast<double>(msgs),
                               4),
                    Table::fmt_int(corrupted)});
    }
  }
  // Drift row: bounded delays, drifting clocks.
  {
    std::uint64_t late = 0, msgs = 0;
    int corrupted = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto r = run_abd_synchronizer(
          bidirectional_ring(16), broadcast_app_factory(0), kRounds,
          fixed_delay(1.0), 1.25, seed, ClockBounds{0.7, 1.4},
          DriftModel::kFixedRandomRate);
      late += r.late_messages;
      msgs += r.messages_total;
      corrupted += r.outputs_match_reference ? 0 : 1;
    }
    viol.add_row({"fixed(1)+drift[0.7,1.4]", "1.25",
                  Table::fmt_int(static_cast<std::int64_t>(late)),
                  Table::fmt(msgs == 0 ? 0.0
                                       : static_cast<double>(late) /
                                             static_cast<double>(msgs),
                             4),
                  Table::fmt_int(corrupted)});
  }
  std::printf("%s\n",
              viol.render("E6c: ABD synchronizer on ABE networks — "
                          "violations vs period multiplier")
                  .c_str());
  std::printf("shape: late_frac ~ e^{-mult} for exponential delays; "
              "heavier tails decay slower; drift alone also corrupts.\n\n");
}

}  // namespace benchutil

static void BM_AlphaRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto r = run_alpha_synchronizer(unidirectional_ring(n),
                                          counter_app_factory(), 10,
                                          exponential_delay(1.0), seed++);
    benchmark::DoNotOptimize(r.messages_total);
  }
}
BENCHMARK(BM_AlphaRound)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
