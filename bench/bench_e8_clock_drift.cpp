// E8 — Definition 1(2): bounded clock drift.
//
// The ABE model only requires known bounds [s_low, s_high] on clock speed.
// This bench sweeps the bound ratio s_high/s_low from 1 (ideal) to 16
// (wildly heterogeneous hardware) under both drift shapes, and shows the
// election stays correct with gracefully degrading cost. (Contrast with
// E6c, where the same drift silently corrupts the ABD synchronizer.)
#include <cmath>

#include "bench_util.h"
#include "core/harness.h"

namespace abe {
namespace {

constexpr std::size_t kN = 64;
constexpr std::uint64_t kTrials = 15;

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E8",
               "the election tolerates any known clock-speed bounds; cost "
               "degrades smoothly with the bound ratio");

  Table table({"ratio", "drift_model", "msgs", "msgs/n", "time", "time/n",
               "failures", "safety_violations"});
  for (double ratio : {1.0, 2.0, 4.0, 16.0}) {
    for (DriftModel drift :
         {DriftModel::kFixedRandomRate, DriftModel::kPiecewiseRandom}) {
      ElectionExperiment e;
      e.n = kN;
      e.election.a0 = linear_regime_a0(kN);
      const double s = std::sqrt(ratio);
      e.clock_bounds = ClockBounds{1.0 / s, s};
      e.drift = ratio == 1.0 ? DriftModel::kNone : drift;
      const auto agg = run_election_trials(e, kTrials, 4200);
      table.add_row(
          {Table::fmt(ratio, 0), drift_model_name(e.drift),
           Table::fmt(agg.messages.mean(), 1),
           Table::fmt(agg.messages.mean() / kN, 2),
           Table::fmt(agg.time.mean(), 1),
           Table::fmt(agg.time.mean() / kN, 2),
           Table::fmt_int(static_cast<std::int64_t>(agg.failures)),
           Table::fmt_int(
               static_cast<std::int64_t>(agg.safety_violations))});
      if (ratio == 1.0) break;  // both drift models degenerate to none
    }
  }
  std::printf(
      "%s\n",
      table.render("E8: clock-drift sweep at n = 64 (s_low = 1/sqrt(r), "
                   "s_high = sqrt(r))")
          .c_str());
  std::printf("shape: zero failures and zero safety violations in every "
              "row; msgs/n and time/n grow mildly with the ratio.\n\n");
}

}  // namespace benchutil

static void BM_ElectionUnderDrift(benchmark::State& state) {
  const double ratio = static_cast<double>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = kN;
    e.election.a0 = linear_regime_a0(kN);
    const double s = std::sqrt(ratio);
    e.clock_bounds = ClockBounds{1.0 / s, s};
    e.drift = DriftModel::kPiecewiseRandom;
    e.seed = seed++;
    benchmark::DoNotOptimize(run_election(e).messages);
  }
}
BENCHMARK(BM_ElectionUnderDrift)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
