// E2b — Scenario cells on mesh-shaped graphs: the polling election at scale.
//
// Paper context: the "deterministic election ⇒ polling" theorem forces a
// Θ(n) tree broadcast/echo on every run; this bench runs those cells on the
// torus and random-geometric families at n ∈ {64, 256, 1024} — the
// mesh-shaped workloads the ROADMAP's calendar/ladder-queue scheduler work
// needs to profile against (message-driven event mixes over thousands of
// channels, no tick trains).
//
// The table reports messages and simulated completion time per cell; the
// microbenchmarks time one full trial per iteration (items/s = trials/s)
// so BENCH_e2_scenarios.json rows land in the tracked perf trajectory
// (bench/baseline.json, bench/compare.py).
#include "bench_util.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace abe {
namespace {

constexpr std::size_t kSizes[] = {64, 256, 1024};
constexpr std::uint64_t kTrials = 10;

ScenarioSpec cell(TopologyFamily family, std::size_t n) {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kPollingElection;
  spec.topology = TopologySpec{family, n, 0.0};
  return spec;
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E2b",
               "polling election cells on torus and random-geometric "
               "graphs; Θ(n) tree messages at every size");

  Table table({"cell", "n", "messages", "msgs/n", "time", "ci95"});
  for (TopologyFamily family :
       {TopologyFamily::kTorus, TopologyFamily::kGeometric}) {
    for (std::size_t n : kSizes) {
      const ScenarioSpec spec = cell(family, n);
      const ScenarioAggregate agg = run_scenario_trials(spec, kTrials, 1000);
      table.add_row({spec.cell_id(),
                     Table::fmt_int(static_cast<std::int64_t>(n)),
                     Table::fmt(agg.messages.mean(), 1),
                     Table::fmt(agg.messages.mean() / static_cast<double>(n),
                                2),
                     Table::fmt(agg.time.mean(), 1),
                     Table::fmt(agg.time.ci95_half_width(), 1)});
    }
  }
  std::printf("%s\n",
              table.render("E2b: polling election scenario cells").c_str());
  std::printf("polling pays ~3(n-1) tree messages per tie-free run on "
              "every family: msgs/n flat near 3.\n\n");
}

}  // namespace benchutil

// One full scenario trial per iteration; random families redraw the graph
// per trial (seed-derived), so graph construction is part of the measured
// workload exactly as in a sweep.
static void BM_ScenarioCell(benchmark::State& state,
                            TopologyFamily family) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ScenarioSpec spec = cell(family, n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const ScenarioTrialResult result = run_scenario_trial(spec, seed++);
    benchmark::DoNotOptimize(result.messages);
    state.counters["sim_msgs"] = static_cast<double>(result.messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_ScenarioCell, torus, abe::TopologyFamily::kTorus)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScenarioCell, rgg, abe::TopologyFamily::kGeometric)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
