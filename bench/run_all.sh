#!/usr/bin/env sh
# Runs every bench binary and captures its outputs for the perf trajectory:
#   BENCH_<id>.json — google-benchmark JSON (machine-readable wall times)
#   BENCH_<id>.log  — the experiment tables printed before the benchmarks
#
# Usage: run_all.sh <out_dir> <bench_binary>...
# Normally invoked via `cmake --build build --target run_all_benches`.
# ABE_BENCH_ARGS adds extra google-benchmark flags, e.g.
#   ABE_BENCH_ARGS=--benchmark_min_time=0.01 for a quick smoke pass.
set -eu

out_dir=$1
shift
mkdir -p "$out_dir"

status=0
for bin in "$@"; do
  id=$(basename "$bin" | sed 's/^bench_//')
  json="$out_dir/BENCH_${id}.json"
  log="$out_dir/BENCH_${id}.log"
  echo "== bench_${id} -> ${json}"
  if ! "$bin" \
      --benchmark_out="$json" \
      --benchmark_out_format=json \
      ${ABE_BENCH_ARGS:-} >"$log" 2>&1; then
    echo "!! bench_${id} FAILED (see $log)" >&2
    status=1
  fi
done
exit $status
