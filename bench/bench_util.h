// Shared scaffolding for the experiment benches.
//
// Every bench binary prints its experiment table(s) first — the rows a paper
// would report — and then hands over to google-benchmark for wall-time
// microbenchmarks of the same workloads. ABE_BENCH_MAIN wires that order.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "stats/table.h"

namespace abe::benchutil {

// Experiment-table phase; each bench defines its own.
void print_experiment_tables();

inline void print_header(const char* id, const char* claim) {
  std::printf("\n############################################################\n");
  std::printf("# Experiment %s\n# Paper claim: %s\n", id, claim);
  std::printf("############################################################\n\n");
}

}  // namespace abe::benchutil

#define ABE_BENCH_MAIN()                                          \
  int main(int argc, char** argv) {                               \
    ::abe::benchutil::print_experiment_tables();                  \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }
