// Shared scaffolding for the experiment benches.
//
// Every bench binary prints its experiment table(s) first — the rows a paper
// would report — and then hands over to google-benchmark for wall-time
// microbenchmarks of the same workloads. ABE_BENCH_MAIN wires that order.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>

#include "sim/equeue/backend.h"
#include "stats/table.h"

// Build provenance, injected by bench/CMakeLists.txt so every BENCH_*.json
// in the perf trajectory is attributable to a commit and toolchain. The git
// sha arrives via a build-time generated header (bench/gitsha.cmake) so it
// tracks HEAD across incremental rebuilds; the fallbacks keep stray
// compilations working.
#ifdef ABE_BENCH_HAVE_SHA_HEADER
#include "abe_bench_git_sha.h"
#endif
#ifndef ABE_BENCH_GIT_SHA
#define ABE_BENCH_GIT_SHA "unknown"
#endif
#ifndef ABE_BENCH_COMPILER
#define ABE_BENCH_COMPILER "unknown"
#endif
#ifndef ABE_BENCH_BUILD_TYPE
#define ABE_BENCH_BUILD_TYPE "unknown"
#endif

namespace abe::benchutil {

// Experiment-table phase; each bench defines its own.
void print_experiment_tables();

inline void print_header(const char* id, const char* claim) {
  std::printf(
      "\n############################################################\n");
  std::printf("# Experiment %s\n# Paper claim: %s\n", id, claim);
  std::printf(
      "############################################################\n\n");
}

// Embeds run metadata into google-benchmark's JSON "context" block so
// BENCH_*.json trajectories stay comparable across PRs: which commit,
// which compiler, which build type, how much hardware.
inline void add_run_metadata() {
  ::benchmark::AddCustomContext("abe_git_sha", ABE_BENCH_GIT_SHA);
  ::benchmark::AddCustomContext("abe_compiler", ABE_BENCH_COMPILER);
  ::benchmark::AddCustomContext("abe_build_type", ABE_BENCH_BUILD_TYPE);
  ::benchmark::AddCustomContext(
      "abe_hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));
  // The process-wide scheduler default (ABE_EQUEUE override included), so
  // a baseline recorded under a pinned backend is never mistaken for the
  // auto default.
  ::benchmark::AddCustomContext(
      "abe_equeue_default",
      ::abe::equeue_backend_name(
          ::abe::resolve_equeue_backend(::abe::EqueueBackend::kAuto)));
}

}  // namespace abe::benchutil

#define ABE_BENCH_MAIN()                                          \
  int main(int argc, char** argv) {                               \
    ::abe::benchutil::print_experiment_tables();                  \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::abe::benchutil::add_run_metadata();                         \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }
