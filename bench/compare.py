#!/usr/bin/env python3
"""Compare bench results against the tracked baseline (bench/baseline.json).

The perf trajectory works like this: `cmake --build build --target
run_all_benches` drops google-benchmark JSON under build/bench_results/, and
this script diffs those numbers against the committed baseline so speedups
and regressions are visible mechanically, per benchmark, across PRs.

  # report per-bench deltas (exit 0 unless --strict and a regression)
  python3 bench/compare.py --results build/bench_results

  # refresh the committed baseline from a results directory
  python3 bench/compare.py --results build/bench_results --update

Comparison metric: items_per_second when the benchmark reports it (events/s,
trials/s — higher is better), else real_time (lower is better). CI runs this
as a non-blocking warning step: machines differ, so thresholds are advisory;
the committed baseline records the numbers plus the metadata (git sha,
compiler, build type, hardware threads) needed to interpret them.
"""

import argparse
import json
import os
import sys
from datetime import datetime, timezone

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(results_dir):
    """Returns (benchmarks, context) merged over every BENCH_*.json file."""
    benches = {}
    context = {}
    for fname in sorted(os.listdir(results_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        bench_id = fname[len("BENCH_"):-len(".json")]
        path = os.path.join(results_dir, fname)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}",
                  file=sys.stderr)
            continue
        context = doc.get("context", context)
        for bm in doc.get("benchmarks", []):
            if bm.get("run_type", "iteration") != "iteration":
                continue  # skip mean/median/stddev aggregate rows
            try:
                key = f"{bench_id}/{bm['name']}"
                unit = _TIME_UNIT_NS.get(bm.get("time_unit", "ns"), 1.0)
                entry = {"real_time_ns": bm["real_time"] * unit}
            except (KeyError, TypeError) as err:
                print(f"warning: skipping malformed entry in {path}: {err}",
                      file=sys.stderr)
                continue
            if "items_per_second" in bm:
                entry["items_per_second"] = bm["items_per_second"]
            benches[key] = entry
    return benches, context


def metadata_from_context(context):
    return {
        "git_sha": context.get("abe_git_sha", "unknown"),
        "compiler": context.get("abe_compiler", "unknown"),
        "build_type": context.get("abe_build_type", "unknown"),
        "hardware_threads": context.get("abe_hardware_threads", "unknown"),
        "equeue_default": context.get("abe_equeue_default", "unknown"),
        "recorded": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    }


def write_baseline(path, benches, context):
    doc = {"metadata": metadata_from_context(context), "benchmarks": benches}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"baseline written: {path} ({len(benches)} benchmarks)")


def compare(baseline_doc, benches, context, threshold):
    base = baseline_doc.get("benchmarks", {})
    meta = baseline_doc.get("metadata", {})
    print(f"baseline : sha={meta.get('git_sha', '?')} "
          f"compiler={meta.get('compiler', '?')} "
          f"build={meta.get('build_type', '?')} "
          f"threads={meta.get('hardware_threads', '?')}")
    print(f"current  : sha={context.get('abe_git_sha', '?')} "
          f"compiler={context.get('abe_compiler', '?')} "
          f"build={context.get('abe_build_type', '?')} "
          f"threads={context.get('abe_hardware_threads', '?')}")
    print()

    rows = []
    regressions = []
    new_count = 0
    missing_count = 0
    for key in sorted(set(base) | set(benches)):
        b, c = base.get(key), benches.get(key)
        if b is None:
            # A bench present in the run but absent from the baseline is a
            # newly added benchmark, not an error: report it and move on
            # (record it into the baseline with --update when ready).
            rows.append((key, "-", "-", "new"))
            new_count += 1
            continue
        if c is None:
            # Absent from this run (e.g. CI smoke runs a single bench
            # binary): informational only, never a failure.
            rows.append((key, "-", "-", "missing"))
            missing_count += 1
            continue
        if b.get("items_per_second") and "items_per_second" in c:
            ratio = c["items_per_second"] / b["items_per_second"]
            note = f"{ratio:.2f}x items/s"
        elif b.get("real_time_ns") and c.get("real_time_ns"):
            ratio = b["real_time_ns"] / c["real_time_ns"]
            note = f"{ratio:.2f}x speed"
        else:
            rows.append((key, "-", "-", "incomparable"))
            continue
        delta = (ratio - 1.0) * 100.0
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            regressions.append((key, ratio))
        elif ratio > 1.0 + threshold:
            status = "improved"
        rows.append((key, note, f"{delta:+.1f}%", status))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark'.ljust(width)}  {'vs baseline':>14}  {'delta':>8}  status")
    for key, note, delta, status in rows:
        print(f"{key.ljust(width)}  {note:>14}  {delta:>8}  {status}")
    print()
    if new_count:
        print(f"{new_count} new benchmark(s) not in the baseline "
              f"(bench/compare.py --update records them)")
    if missing_count:
        print(f"{missing_count} baseline benchmark(s) not in this run")
    if regressions:
        print(f"{len(regressions)} benchmark(s) slower than baseline by more "
              f"than {threshold * 100:.0f}%:")
        for key, ratio in regressions:
            print(f"  {key}: {ratio:.2f}x")
    else:
        print(f"no regressions beyond {threshold * 100:.0f}% threshold")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline",
                    default=os.path.join(os.path.dirname(__file__),
                                         "baseline.json"))
    ap.add_argument("--results", default="build/bench_results",
                    help="directory holding BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative slowdown that counts as a regression")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from --results instead of comparing")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero when a regression is found")
    args = ap.parse_args()

    if not os.path.isdir(args.results):
        print(f"error: results directory not found: {args.results}",
              file=sys.stderr)
        return 2
    benches, context = load_results(args.results)
    if not benches:
        print(f"error: no BENCH_*.json results under {args.results}",
              file=sys.stderr)
        return 2

    if args.update:
        write_baseline(args.baseline, benches, context)
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline_doc = json.load(f)
    except OSError:
        print(f"error: no baseline at {args.baseline}; record one with "
              f"--update", file=sys.stderr)
        return 2
    except json.JSONDecodeError as err:
        print(f"error: corrupt baseline {args.baseline}: {err}",
              file=sys.stderr)
        return 2
    if not isinstance(baseline_doc.get("benchmarks"), dict):
        print(f"error: baseline {args.baseline} has no 'benchmarks' object",
              file=sys.stderr)
        return 2

    # Exit codes: 0 ok (or deltas without --strict), 1 regression under
    # --strict, 2 infrastructure problem — CI keys off the distinction.
    regressions = compare(baseline_doc, benches, context, args.threshold)
    return 1 if (regressions and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
