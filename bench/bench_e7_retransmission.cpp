// E7 — Case (iii): lossy channels make delay unbounded with mean 1/p.
//
// Paper claim (Section 1): over a channel with per-attempt success
// probability p, the expected number of transmissions is
// k_avg = Σ (k+1)(1−p)^k p = 1/p, so the expected delay is 1/p slots while
// no sure bound exists. Two measurements against the closed form:
//  (a) the explicit stop-and-wait ARQ protocol over a dropping link
//      (attempts counted by the real sender/receiver state machines);
//  (b) the GeometricRetransmissionDelay channel model (the shortcut the
//      rest of the library uses), sampled directly.
// The table also shows the tail (1−p)^k — the reason ABD's sure bound can
// never hold here.
#include "bench_util.h"
#include "core/analysis.h"
#include "net/arq.h"
#include "net/delay.h"
#include "sim/rng.h"
#include "stats/histogram.h"

namespace abe {
namespace benchutil {

void print_experiment_tables() {
  print_header("E7",
               "expected transmissions over a lossy channel = 1/p "
               "(unbounded support, bounded mean)");

  Table table({"p", "k_avg=1/p", "arq_attempts", "arq_latency",
               "model_mean", "P(>10 attempts)", "arq_duplicates"});
  for (double p : {0.9, 0.7, 0.5, 0.3, 0.2, 0.1}) {
    const ArqResult arq = run_arq_experiment(p, 4000, 1.0, 99);
    Rng rng(1);
    const auto model = geometric_retransmission_delay(p, 1.0);
    Histogram h;
    for (int i = 0; i < 100000; ++i) h.add(model->sample(rng));
    table.add_row({Table::fmt(p, 2),
                   Table::fmt(expected_transmissions(p), 2),
                   Table::fmt(arq.mean_attempts, 2),
                   Table::fmt(arq.mean_latency, 2), Table::fmt(h.mean(), 2),
                   Table::fmt(retransmission_tail(p, 10), 6),
                   Table::fmt_int(static_cast<std::int64_t>(arq.duplicates))});
  }
  std::printf("%s\n",
              table.render("E7: measured vs closed-form retransmission cost")
                  .c_str());
  std::printf("shape: arq_attempts and model_mean track 1/p within noise; "
              "the tail column is positive for every finite k.\n\n");
}

}  // namespace benchutil

static void BM_ArqExperiment(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_arq_experiment(p, 500, 1.0, seed++).mean_attempts);
  }
}
BENCHMARK(BM_ArqExperiment)->Arg(90)->Arg(50)->Arg(10)
    ->Unit(benchmark::kMillisecond);

static void BM_GeoRetxSampling(benchmark::State& state) {
  Rng rng(5);
  const auto model = geometric_retransmission_delay(0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->sample(rng));
  }
}
BENCHMARK(BM_GeoRetxSampling);

}  // namespace abe

ABE_BENCH_MAIN()
