// E4 — The role of the base activation parameter A0.
//
// Paper claim (Section 3): A0 ∈ (0,1) parameterises the algorithm; the
// adaptive wake-up probability keeps the overall activation rate constant
// over time. This sweep charts the real trade-off on a fixed ring (n = 64):
// A0 is swept as c/n² across four decades of c.
//   * small c  — activations are rare: few messages (→ the n lower bound)
//                but long waits before the first candidate appears;
//   * moderate c — the sweet spot the paper's linear claim lives in;
//   * large c  — concurrent candidates knock each other out repeatedly:
//                message and time cost explode (the duel regime).
#include <vector>

#include "bench_util.h"
#include "core/harness.h"

namespace abe {
namespace {

constexpr std::size_t kN = 64;
constexpr std::uint64_t kTrials = 20;
const double kCs[] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0,
                      64.0,  256.0, 1024.0};

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E4",
               "A0 trades waiting time against collision messages; the "
               "adaptive rule is calibrated by c = n^2*A0");

  Table table({"c=n^2*A0", "A0", "msgs", "msgs/n", "time", "time/n",
               "activations", "purges"});
  for (double c : kCs) {
    ElectionExperiment e;
    e.n = kN;
    e.election.a0 = linear_regime_a0(kN, c);
    const auto agg = run_election_trials(e, kTrials, 800);
    table.add_row({Table::fmt(c, 3), Table::fmt(e.election.a0, 6),
                   Table::fmt(agg.messages.mean(), 1),
                   Table::fmt(agg.messages.mean() / kN, 2),
                   Table::fmt(agg.time.mean(), 1),
                   Table::fmt(agg.time.mean() / kN, 2),
                   Table::fmt(agg.activations.mean(), 1),
                   Table::fmt(agg.purges.mean(), 1)});
  }
  std::printf("%s\n",
              table.render("E4: A0 sweep at n = 64 (A0 = c/n^2)").c_str());
  std::printf("shape: msgs/n rises monotonically with c; time/n is "
              "U-shaped with its minimum near c in [1, 16].\n\n");
}

}  // namespace benchutil

static void BM_ElectionAtC(benchmark::State& state) {
  const double c = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = kN;
    e.election.a0 = linear_regime_a0(kN, c);
    e.seed = seed++;
    benchmark::DoNotOptimize(run_election(e).messages);
  }
}
BENCHMARK(BM_ElectionAtC)->Arg(50)->Arg(100)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
