// E15 — Real-socket transport: what bounded expected delay costs when the
// datagrams are real.
//
// The udp runtime (runtime/udp_runtime.h) replaces the simulator's sampled
// DelayModel with measured loopback transit. This bench prices that
// substrate and publishes the numbers the ROADMAP records:
//
//   rtt            — raw UdpSocket ping-pong round trips: the kernel
//                    loopback floor under the measured-delay histogram
//                    (percentiles over a few thousand echoes).
//   arq goodput    — messages through the reliable ARQ channel per wall
//                    second as injected per-attempt loss rises: what
//                    retransmission costs when the loss is real suppressed
//                    datagrams, not simulator bookkeeping (cf. E7, the
//                    simulated retransmission experiment).
//   calibration    — fit_udp_calibration on a harvested run: the measured
//                    offset/mean that close the loop back into a
//                    simulator DelayModel.
//
// The strict A/B gate (ci.yml) runs BM_UdpDatagramRoundTrip and
// BM_UdpArqBurst back to back on like hardware: a regression is a tax on
// every real-socket trial.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "net/delay.h"
#include "net/message.h"
#include "net/node.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "runtime/udp_runtime.h"
#include "runtime/udp_socket.h"
#include "stats/table.h"

namespace abe {
namespace {

// One blocking round trip: send `size` bytes, poll until the echo-less
// receiver sees it. Returns wall microseconds, or -1 on a lost datagram
// (loopback under memory pressure may drop).
double one_way_us(const UdpSocket& tx, const UdpSocket& rx, char* buffer,
                  std::size_t size) {
  const auto t0 = std::chrono::steady_clock::now();
  if (!tx.send_to(rx.port(), buffer, size)) return -1.0;
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (rx.receive(buffer, size) > 0) {
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    }
  }
  return -1.0;
}

// Sends `count` messages down edge 0 from on_start, then idles terminated.
class Burster final : public Node {
 public:
  explicit Burster(std::uint64_t count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (std::uint64_t i = 0; i < count_; ++i) {
      ctx.send(0, std::make_unique<IntPayload>(static_cast<std::int64_t>(i)));
    }
  }
  void on_message(Context&, std::size_t, const Payload&) override {}
  bool is_terminated() const override { return true; }

 private:
  std::uint64_t count_;
};

class Sink final : public Node {
 public:
  void on_message(Context&, std::size_t, const Payload&) override {}
};

struct ArqRun {
  double seconds = 0.0;
  std::uint64_t delivered = 0;
  double retransmits = 0.0;
  MetricsSnapshot snapshot;
};

// One reliable two-node burst under per-attempt loss `loss`: wall time
// from start() to quiescence (every message ACKed and handled).
ArqRun arq_burst(double loss, std::uint64_t messages, std::uint64_t seed) {
  UdpNetConfig config;
  config.topology = unidirectional_ring(2);
  config.delay = fixed_delay(0.05);
  config.time_scale_us = 50.0;
  config.loss_probability = loss;
  config.reliable = true;
  config.seed = seed;
  UdpNetwork net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    if (i == 0) return std::make_unique<Burster>(messages);
    return std::make_unique<Sink>();
  });
  const auto t0 = std::chrono::steady_clock::now();
  net.start();
  const bool quiescent = net.wait_quiescent(std::chrono::milliseconds(30000));
  ArqRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  net.stop();
  run.delivered = quiescent ? net.messages_delivered() : 0;
  run.snapshot = net.metrics_snapshot();
  for (const MetricValue& entry : run.snapshot.entries()) {
    if (entry.name == "udp.retransmits") run.retransmits = entry.value;
  }
  return run;
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E15",
               "the real-socket substrate: measured loopback round trips, "
               "ARQ goodput under real suppressed datagrams, and the "
               "measured-delay calibration that feeds back into the "
               "simulator's DelayModel");

  // --- RTT percentiles ----------------------------------------------------
  {
    UdpSocket tx;
    UdpSocket rx;
    char buffer[64] = {};
    std::vector<double> samples;
    constexpr int kEchoes = 4000;
    samples.reserve(kEchoes);
    for (int i = 0; i < kEchoes; ++i) {
      const double us = one_way_us(tx, rx, buffer, sizeof(buffer));
      if (us >= 0.0) samples.push_back(us);
    }
    std::sort(samples.begin(), samples.end());
    const auto pct = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(samples.size() - 1));
      return samples[idx];
    };
    Table table({"metric", "us"});
    table.add_row({"p50", Table::fmt(pct(0.50), 1)});
    table.add_row({"p90", Table::fmt(pct(0.90), 1)});
    table.add_row({"p99", Table::fmt(pct(0.99), 1)});
    table.add_row({"max", Table::fmt(samples.back(), 1)});
    std::printf("%s\n",
                table.render("E15: loopback datagram transit (send->recv, "
                             + std::to_string(samples.size()) + " samples)")
                    .c_str());
  }

  // --- ARQ goodput vs loss ------------------------------------------------
  {
    Table table({"loss", "delivered", "retransmits", "seconds", "msgs/s"});
    constexpr std::uint64_t kMessages = 1000;
    for (const double loss : {0.0, 0.1, 0.3, 0.5}) {
      const ArqRun run = arq_burst(loss, kMessages, /*seed=*/1);
      table.add_row(
          {Table::fmt(loss, 2),
           Table::fmt_int(static_cast<std::int64_t>(run.delivered)),
           Table::fmt_int(static_cast<std::int64_t>(run.retransmits)),
           Table::fmt(run.seconds, 3),
           Table::fmt(static_cast<double>(run.delivered) / run.seconds, 0)});
    }
    std::printf("%s\n",
                table.render("E15b: ARQ goodput vs per-attempt loss "
                             "(2 nodes, reliable channel)")
                    .c_str());
  }

  // --- calibration --------------------------------------------------------
  {
    const ArqRun run = arq_burst(0.0, 2000, /*seed=*/2);
    const UdpCalibration cal = fit_udp_calibration(run.snapshot);
    Table table({"metric", "value"});
    table.add_row({"samples", Table::fmt_int(
                                  static_cast<std::int64_t>(cal.samples))});
    table.add_row({"offset_us", Table::fmt(cal.offset_us, 1)});
    table.add_row({"mean_extra_us", Table::fmt(cal.mean_extra_us, 1)});
    std::printf("%s\n",
                table.render("E15c: measured-delay calibration "
                             "(fit_udp_calibration -> shifted exponential)")
                    .c_str());
  }
}

}  // namespace benchutil

// --- microbenchmarks (the tracked perf trajectory) -------------------------

// The raw transport floor: one 64-byte datagram send + receive through the
// kernel loopback path. Items = datagrams.
static void BM_UdpDatagramRoundTrip(benchmark::State& state) {
  UdpSocket tx;
  UdpSocket rx;
  char buffer[64] = {};
  std::uint64_t lost = 0;
  for (auto _ : state) {
    if (one_way_us(tx, rx, buffer, sizeof(buffer)) < 0.0) ++lost;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["lost"] = static_cast<double>(lost);
}
BENCHMARK(BM_UdpDatagramRoundTrip);

// A full reliable burst (network bring-up, 64 messages through the ARQ
// channel, quiescence, teardown) at 0‰ and 300‰ per-attempt loss. Items =
// messages delivered; the loss arg prices retransmission.
static void BM_UdpArqBurst(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 1000.0;
  constexpr std::uint64_t kMessages = 64;
  std::uint64_t delivered = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    delivered += arq_burst(loss, kMessages, seed++).delivered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_UdpArqBurst)->Arg(0)->Arg(300)->ArgName("loss_permille");

}  // namespace abe

ABE_BENCH_MAIN()
