// E2 — Expected message complexity vs ring size.
//
// Paper claim (Sections 1 & 3): the ABE election has expected *linear*
// message complexity, beating the Ω(n log n) bound that applies to classic
// asynchronous election, and matching the best anonymous synchronous-ring
// algorithms. Baselines: Itai–Rodeh (anonymous, O(n log n) expected) and
// Chang–Roberts (unique ids, Θ(n log n) average).
//
// The table prints messages per election (mean ± 95% CI) and the normalised
// msgs/n column — flat for the ABE election, growing ~log n for the
// baselines. A log-log slope fit over the sweep summarises each curve.
#include <cmath>
#include <vector>

#include "algo/chang_roberts.h"
#include "algo/itai_rodeh.h"
#include "bench_util.h"
#include "core/harness.h"
#include "stats/regression.h"

namespace abe {
namespace {

constexpr std::size_t kSizes[] = {8, 16, 32, 64, 128, 256};
constexpr std::uint64_t kTrials = 20;

ElectionAggregate abe_runs(std::size_t n, std::uint64_t trials = kTrials) {
  ElectionExperiment e;
  e.n = n;
  e.election.a0 = linear_regime_a0(n);
  return run_election_trials(e, trials, 1000);
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E2",
               "expected message complexity of the ABE election is linear "
               "in n; IR and CR baselines pay n log n");

  Table table({"n", "abe_msgs", "abe_ci95", "abe_msgs/n", "ir_msgs",
               "ir_msgs/n", "cr_msgs", "cr_msgs/n"});
  std::vector<double> xs, abe_ys, ir_ys, cr_ys;
  for (std::size_t n : kSizes) {
    const auto abe_agg = abe_runs(n);
    IrExperiment ir;
    ir.n = n;
    const auto ir_agg = run_itai_rodeh_trials(ir, kTrials, 2000);
    CrExperiment cr;
    cr.n = n;
    const auto cr_agg = run_chang_roberts_trials(cr, kTrials, 3000);

    xs.push_back(static_cast<double>(n));
    abe_ys.push_back(abe_agg.messages.mean());
    ir_ys.push_back(ir_agg.messages.mean());
    cr_ys.push_back(cr_agg.messages.mean());

    table.add_row({Table::fmt_int(static_cast<std::int64_t>(n)),
                   Table::fmt(abe_agg.messages.mean(), 1),
                   Table::fmt(abe_agg.messages.ci95_half_width(), 1),
                   Table::fmt(abe_agg.messages.mean() / n, 2),
                   Table::fmt(ir_agg.messages.mean(), 1),
                   Table::fmt(ir_agg.messages.mean() / n, 2),
                   Table::fmt(cr_agg.messages.mean(), 1),
                   Table::fmt(cr_agg.messages.mean() / n, 2)});
  }
  std::printf("%s\n",
              table.render("E2: messages per election (ring size sweep)")
                  .c_str());

  const double abe_slope = fit_loglog(xs, abe_ys).slope;
  const double ir_slope = fit_loglog(xs, ir_ys).slope;
  const double cr_slope = fit_loglog(xs, cr_ys).slope;
  std::printf("log-log slopes: ABE=%.3f (linear => ~1), IR=%.3f, CR=%.3f "
              "(n log n => >1)\n",
              abe_slope, ir_slope, cr_slope);
  std::printf("paper-shape check: ABE slope ~1 and ABE msgs/n flat: %s\n\n",
              (abe_slope < 1.25 && abe_ys.back() / xs.back() <
                                       ir_ys.back() / xs.back())
                  ? "HOLDS"
                  : "VIOLATED");
}

}  // namespace benchutil

// Wall-time microbenchmarks of one full election at each size.
static void BM_AbeElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = n;
    e.election.a0 = linear_regime_a0(n);
    e.seed = seed++;
    const auto result = run_election(e);
    benchmark::DoNotOptimize(result.messages);
    state.counters["sim_msgs"] = static_cast<double>(result.messages);
  }
}
BENCHMARK(BM_AbeElection)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

static void BM_ItaiRodeh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    abe::IrExperiment e;
    e.n = n;
    e.seed = seed++;
    const auto result = abe::run_itai_rodeh(e);
    benchmark::DoNotOptimize(result.messages);
  }
}
BENCHMARK(BM_ItaiRodeh)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
