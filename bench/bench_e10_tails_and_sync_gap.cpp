// E10 — "Every asynchronous execution is an ABE execution; long delays are
// merely improbable", and the ABE election's cost is close to the
// synchronous/ABD optimum.
//
// (a) Delay-tail table: per delay law (all mean 1), the quantiles and the
//     empirical P(delay > k) — bounded models hit a hard ceiling, ABE laws
//     put positive mass on every threshold (the executions-inclusion
//     argument behind Theorem 1).
// (b) Sync-gap table: election cost under fixed delay (the ABD/synchronous
//     limit) vs genuinely asynchronous laws at the same mean — the paper's
//     "efficiency comparable to the most optimal … synchronous rings" claim
//     as a measured ratio.
#include "bench_util.h"
#include "core/harness.h"
#include "net/delay.h"
#include "stats/histogram.h"

namespace abe {
namespace {

constexpr std::size_t kN = 64;
constexpr std::uint64_t kTrials = 20;

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E10",
               "all async executions possible, long delays improbable; ABE "
               "election cost ~ synchronous optimum");

  Table tails({"delay_model", "p50", "p90", "p99", "p99.9", "max_seen",
               "P(>4)", "P(>16)"});
  for (const auto& name : standard_delay_model_names()) {
    Rng rng(3);
    const auto model = make_delay_model(name, 1.0);
    Histogram h;
    for (int i = 0; i < 200000; ++i) h.add(model->sample(rng));
    tails.add_row({name, Table::fmt(h.quantile(0.5), 2),
                   Table::fmt(h.quantile(0.9), 2),
                   Table::fmt(h.quantile(0.99), 2),
                   Table::fmt(h.quantile(0.999), 2),
                   Table::fmt(h.quantile(1.0), 2),
                   Table::fmt(h.tail_fraction(4.0), 5),
                   Table::fmt(h.tail_fraction(16.0), 6)});
  }
  std::printf("%s\n",
              tails.render("E10a: delay tails at equal mean 1 (200k samples)")
                  .c_str());

  Table gap({"delay_model", "msgs", "time", "msgs_ratio_vs_fixed",
             "time_ratio_vs_fixed"});
  double fixed_msgs = 0, fixed_time = 0;
  for (const char* name : {"fixed", "uniform", "exponential", "lomax"}) {
    ElectionExperiment e;
    e.n = kN;
    e.delay_name = name;
    e.election.a0 = linear_regime_a0(kN);
    const auto agg = run_election_trials(e, kTrials, 900);
    if (std::string(name) == "fixed") {
      fixed_msgs = agg.messages.mean();
      fixed_time = agg.time.mean();
    }
    gap.add_row({name, Table::fmt(agg.messages.mean(), 1),
                 Table::fmt(agg.time.mean(), 1),
                 Table::fmt(agg.messages.mean() / fixed_msgs, 2),
                 Table::fmt(agg.time.mean() / fixed_time, 2)});
  }
  std::printf("%s\n",
              gap.render("E10b: election cost vs the ABD/synchronous limit "
                         "(fixed delay), n = 64")
                  .c_str());
  std::printf("shape: ratios stay O(1) — asynchrony with bounded expected "
              "delay costs only a constant factor.\n\n");
}

}  // namespace benchutil

static void BM_TailSampling(benchmark::State& state) {
  Rng rng(3);
  const auto model = lomax_delay(2.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->sample(rng));
  }
}
BENCHMARK(BM_TailSampling);

static void BM_FixedVsExpElection(benchmark::State& state) {
  const bool fixed = state.range(0) == 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = kN;
    e.delay_name = fixed ? "fixed" : "exponential";
    e.election.a0 = linear_regime_a0(kN);
    e.seed = seed++;
    benchmark::DoNotOptimize(run_election(e).messages);
  }
  state.SetLabel(fixed ? "fixed" : "exponential");
}
BENCHMARK(BM_FixedVsExpElection)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
