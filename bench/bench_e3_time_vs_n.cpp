// E3 — Expected time complexity vs ring size.
//
// Paper claim (Sections 1 & 3): the ABE election elects in expected linear
// *time* (real time, with the expected message delay and the tick period as
// the time units). The table reports the election time mean ± CI and the
// normalised time/n column, plus how the time splits into waiting for
// activations vs token travel (ticks fired per node).
#include <vector>

#include "bench_util.h"
#include "core/harness.h"
#include "stats/regression.h"

namespace abe {
namespace {

constexpr std::size_t kSizes[] = {8, 16, 32, 64, 128, 256};
constexpr std::uint64_t kTrials = 20;

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E3",
               "expected election time is linear in n (time unit = expected "
               "delay = tick period)");

  Table table({"n", "time", "ci95", "time/n", "activations", "ticks/node"});
  std::vector<double> xs, ys;
  for (std::size_t n : kSizes) {
    ElectionExperiment e;
    e.n = n;
    e.election.a0 = linear_regime_a0(n);
    const auto agg = run_election_trials(e, kTrials, 500);
    xs.push_back(static_cast<double>(n));
    ys.push_back(agg.time.mean());
    table.add_row({Table::fmt_int(static_cast<std::int64_t>(n)),
                   Table::fmt(agg.time.mean(), 1),
                   Table::fmt(agg.time.ci95_half_width(), 1),
                   Table::fmt(agg.time.mean() / n, 2),
                   Table::fmt(agg.activations.mean(), 1),
                   Table::fmt(agg.ticks.mean() / n, 1)});
  }
  std::printf("%s\n",
              table.render("E3: time to election (ring size sweep)").c_str());
  const double slope = fit_loglog(xs, ys).slope;
  std::printf("log-log slope of time vs n: %.3f (paper: ~1)\n", slope);
  std::printf("paper-shape check: %s\n\n",
              slope > 0.7 && slope < 1.3 ? "HOLDS" : "VIOLATED");
}

}  // namespace benchutil

static void BM_ElectionTimeSim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  double total_sim_time = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = n;
    e.election.a0 = linear_regime_a0(n);
    e.seed = seed++;
    const auto result = run_election(e);
    total_sim_time += result.election_time;
    ++runs;
  }
  state.counters["sim_time_per_n"] =
      total_sim_time / static_cast<double>(runs) / static_cast<double>(n);
}
BENCHMARK(BM_ElectionTimeSim)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
