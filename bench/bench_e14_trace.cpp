// E14 — Flight recorder and causal-stamp overhead: the tracing hot path.
//
// Every runtime records EVERY trial into the always-on 256-event flight ring
// (trace.h), and since the causal-tracing work each record also carries the
// cause id plus the DELIVER delay/work attribution — so record() sits on the
// simulator's per-event hot path with observability nominally "off". This
// bench pins that cost and the analysis layered on top:
//
//   record/flight  — lite-mode records (numeric args only, no detail
//                    strings) into the wrapping 256-slot ring: the price
//                    every simulated event pays unconditionally.
//   record/causal  — the same records into a causal_history ring
//                    (kFullCapacity): what `critical-path` replays pay.
//   record/detail  — full mode with formatted detail strings, for scale.
//   filter         — per-kind scan of a saturated flight ring (the failure
//                    dump path), after the reserve-from-counts fix.
//   extract        — happens-before walk + attribution of
//                    extract_critical_path (obs/causal.h) over chains the
//                    ring model actually produces.
//
// The strict A/B gate (ci.yml) runs BM_TraceRecordFlight and
// BM_ExtractCriticalPath back to back on like hardware: a regression in
// either is a tax on every trial or on every critical-path report.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/causal.h"
#include "stats/table.h"
#include "trace/trace.h"

namespace abe {
namespace {

// A decision-terminated chain shaped like a ring election's token walk:
// root tick, then `hops` SEND->DELIVER pairs marching around nodes, each
// DELIVER causing the next SEND. extract_critical_path walks all of it.
std::vector<TraceEvent> synthetic_chain(std::size_t hops) {
  Trace trace;
  trace.set_capacity(2 * hops + 8);
  std::int64_t cause =
      trace.record(0.5, TraceKind::kTick, NodeId{0}, /*arg=*/0);
  double t = 0.5;
  for (std::size_t h = 0; h < hops; ++h) {
    const auto edge = static_cast<std::int64_t>(h % 64);
    const std::int64_t send =
        trace.record(t, TraceKind::kSend, NodeId{edge}, edge, cause);
    t += 1.0;
    cause = trace.record(t, TraceKind::kDeliver, NodeId{edge + 1}, edge, send,
                         /*delay=*/0.7, /*work=*/0.1);
  }
  return trace.events();
}

NodeId chain_decision_node(std::size_t hops) {
  return NodeId{static_cast<std::int64_t>((hops - 1) % 64) + 1};
}

void record_batch(Trace& trace, std::uint64_t batch) {
  // Alternating SEND/DELIVER with cause and attribution stamps: the shape
  // (and field traffic) of the simulator's per-event record calls.
  std::int64_t cause = -1;
  for (std::uint64_t i = 0; i < batch; ++i) {
    const double t = static_cast<double>(i);
    if ((i & 1u) == 0u) {
      cause = trace.record(t, TraceKind::kSend, NodeId{0},
                           static_cast<std::int64_t>(i & 63u), cause);
    } else {
      cause = trace.record(t, TraceKind::kDeliver, NodeId{1},
                           static_cast<std::int64_t>(i & 63u), cause,
                           /*delay=*/0.7, /*work=*/0.1);
    }
  }
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E14",
               "the always-on flight recorder (now carrying causal stamps) "
               "prices every simulated event; critical-path extraction "
               "prices every profiled trial");

  Table table({"workload", "n", "ops", "seconds", "ops/s"});
  const auto time_ops = [&](const char* name, std::size_t n,
                            std::uint64_t ops, auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.add_row({name, Table::fmt_int(static_cast<std::int64_t>(n)),
                   Table::fmt_int(static_cast<std::int64_t>(ops)),
                   Table::fmt(secs, 3),
                   Table::fmt(static_cast<double>(ops) / secs, 0)});
  };

  constexpr std::uint64_t kRecords = 1u << 22;
  {
    Trace trace;  // lite flight mode: the unconditional per-event price
    time_ops("record/flight", Trace::kFlightCapacity, kRecords,
             [&] { record_batch(trace, kRecords); });
  }
  {
    Trace trace;
    trace.set_capacity(Trace::kFullCapacity);  // causal_history replay mode
    time_ops("record/causal", Trace::kFullCapacity, kRecords,
             [&] { record_batch(trace, kRecords); });
  }
  {
    Trace trace;
    trace.enable();
    constexpr std::uint64_t kDetailRecords = 1u << 18;
    time_ops("record/detail", Trace::kFullCapacity, kDetailRecords, [&] {
      for (std::uint64_t i = 0; i < kDetailRecords; ++i) {
        trace.record(static_cast<double>(i), TraceKind::kSend, NodeId{0},
                     "edge=" + std::to_string(i & 63u),
                     static_cast<std::int64_t>(i & 63u));
      }
    });
  }
  {
    Trace trace;
    record_batch(trace, 2 * Trace::kFlightCapacity);  // saturated ring
    constexpr std::uint64_t kFilters = 1u << 14;
    time_ops("filter", Trace::kFlightCapacity, kFilters, [&] {
      for (std::uint64_t i = 0; i < kFilters; ++i) {
        benchmark::DoNotOptimize(trace.filter(TraceKind::kSend));
      }
    });
  }
  std::printf("%s\n", table.render("E14: trace recording").c_str());

  Table extract_table({"hops", "events", "extracts", "seconds", "extracts/s"});
  for (std::size_t hops : {8u, 128u, 4096u}) {
    const std::vector<TraceEvent> events = synthetic_chain(hops);
    const NodeId decision = chain_decision_node(hops);
    const double decision_time = events.back().time;
    const std::uint64_t extracts = (std::uint64_t{1} << 22) / (2 * hops + 1);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t total_hops = 0;
    for (std::uint64_t i = 0; i < extracts; ++i) {
      const CriticalPath path =
          extract_critical_path(events, decision, decision_time);
      total_hops += path.hops;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(total_hops);
    extract_table.add_row(
        {Table::fmt_int(static_cast<std::int64_t>(hops)),
         Table::fmt_int(static_cast<std::int64_t>(events.size())),
         Table::fmt_int(static_cast<std::int64_t>(extracts)),
         Table::fmt(secs, 3),
         Table::fmt(static_cast<double>(extracts) / secs, 0)});
  }
  std::printf("%s\n",
              extract_table.render("E14b: critical-path extraction").c_str());
}

}  // namespace benchutil

// --- microbenchmarks (the tracked perf trajectory) -------------------------

// The unconditional hot path: lite flight-ring records with causal stamps.
// range(0) selects the ring: 0 = flight (256), 1 = causal_history (2^20).
static void BM_TraceRecordFlight(benchmark::State& state) {
  constexpr std::uint64_t kBatch = 4096;
  Trace trace;
  if (state.range(0) == 1) trace.set_capacity(Trace::kFullCapacity);
  for (auto _ : state) {
    record_batch(trace, kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_TraceRecordFlight)->Arg(0)->Arg(1)->ArgName("ring");

// Full mode with detail strings: the replay-transcript price for scale.
static void BM_TraceRecordDetail(benchmark::State& state) {
  constexpr std::uint64_t kBatch = 1024;
  Trace trace;
  trace.enable();
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      trace.record(static_cast<double>(i), TraceKind::kSend, NodeId{0},
                   "edge=" + std::to_string(i & 63u),
                   static_cast<std::int64_t>(i & 63u));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_TraceRecordDetail);

// The failure-dump path: per-kind filter of a saturated flight ring.
static void BM_TraceFilter(benchmark::State& state) {
  Trace trace;
  record_batch(trace, 2 * Trace::kFlightCapacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.filter(TraceKind::kSend));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(Trace::kFlightCapacity / 2));
}
BENCHMARK(BM_TraceFilter);

// Happens-before walk + exact attribution per profiled trial. Items =
// DELIVER hops attributed.
static void BM_ExtractCriticalPath(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  const std::vector<TraceEvent> events = synthetic_chain(hops);
  const NodeId decision = chain_decision_node(hops);
  const double decision_time = events.back().time;
  for (auto _ : state) {
    const CriticalPath path =
        extract_critical_path(events, decision, decision_time);
    benchmark::DoNotOptimize(path.span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_ExtractCriticalPath)->Arg(128)->Arg(4096)->ArgName("hops");

}  // namespace abe

ABE_BENCH_MAIN()
