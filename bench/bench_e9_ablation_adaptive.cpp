// E9 — Ablation: the adaptive activation probability is what makes the
// algorithm linear.
//
// Paper claim (Section 3): "By taking 1 − (1−A0)^d as wake-up probability …
// the overall wake-up probability for all nodes stays constant over time.
// This ensures that the algorithm has linear time and message complexity."
// The ablation replaces only that rule, keeping everything else identical:
//   adaptive — the paper's 1 − (1−A0)^d;
//   constant — plain A0: the combined wake-up rate of survivors decays as
//              nodes are knocked out, so late phases stall (time blows up
//              towards Θ(n²) while messages stay flat);
//   linear   — min(1, A0·d): a first-order approximation of adaptive; for
//              the tiny A0 of the linear regime the two nearly coincide.
#include <vector>

#include "bench_util.h"
#include "core/harness.h"
#include "stats/regression.h"

namespace abe {
namespace {

constexpr std::size_t kSizes[] = {16, 32, 64, 128};
constexpr std::uint64_t kTrials = 12;
// c = 4 makes concurrent candidates (and hence knockouts) common enough
// that the policies separate clearly; at c = 1 most elections finish on the
// very first activation and every policy looks alike.
constexpr double kC = 4.0;

ElectionAggregate run_policy(std::size_t n, ActivationPolicy policy) {
  ElectionExperiment e;
  e.n = n;
  e.election.a0 = linear_regime_a0(n, kC);
  e.election.policy = policy;
  e.deadline = 5e7;  // the constant policy genuinely needs long runs
  return run_election_trials(e, kTrials, 600);
}

}  // namespace

namespace benchutil {

void print_experiment_tables() {
  print_header("E9",
               "ablating the adaptive wake-up rule destroys the linear time "
               "bound (constant policy stalls in the endgame)");

  Table table({"n", "policy", "msgs", "msgs/n", "time", "time/n",
               "failures"});
  std::vector<double> xs;
  std::vector<double> time_adaptive, time_constant;
  for (std::size_t n : kSizes) {
    xs.push_back(static_cast<double>(n));
    for (ActivationPolicy policy :
         {ActivationPolicy::kAdaptive, ActivationPolicy::kConstant,
          ActivationPolicy::kLinear}) {
      const auto agg = run_policy(n, policy);
      if (policy == ActivationPolicy::kAdaptive) {
        time_adaptive.push_back(agg.time.mean());
      }
      if (policy == ActivationPolicy::kConstant) {
        time_constant.push_back(agg.time.mean());
      }
      table.add_row(
          {Table::fmt_int(static_cast<std::int64_t>(n)),
           activation_policy_name(policy), Table::fmt(agg.messages.mean(), 1),
           Table::fmt(agg.messages.mean() / n, 2),
           Table::fmt(agg.time.mean(), 1),
           Table::fmt(agg.time.mean() / n, 2),
           Table::fmt_int(static_cast<std::int64_t>(agg.failures))});
    }
  }
  std::printf("%s\n",
              table.render("E9: activation-policy ablation (A0 = 4/n^2)")
                  .c_str());
  const double slope_adaptive = fit_loglog(xs, time_adaptive).slope;
  const double slope_constant = fit_loglog(xs, time_constant).slope;
  std::printf("time log-log slopes: adaptive=%.2f (~1), constant=%.2f "
              "(→ ~2: the stalled endgame)\n",
              slope_adaptive, slope_constant);
  std::printf("paper-shape check: %s\n\n",
              slope_adaptive < 1.4 && slope_constant > slope_adaptive + 0.3
                  ? "HOLDS"
                  : "VIOLATED");
}

}  // namespace benchutil

static void BM_PolicyRun(benchmark::State& state) {
  const auto policy = static_cast<ActivationPolicy>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ElectionExperiment e;
    e.n = 32;
    e.election.a0 = linear_regime_a0(32, kC);
    e.election.policy = policy;
    e.deadline = 5e7;
    e.seed = seed++;
    benchmark::DoNotOptimize(run_election(e).messages);
  }
  state.SetLabel(activation_policy_name(policy));
}
BENCHMARK(BM_PolicyRun)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
