// E11 — extension experiments beyond the brief announcement's core claims.
//
// These chart the library's extensions, each rooted in a sentence of the
// paper:
//  (a) announced election (full termination): total cost = election + n —
//      the "usable primitive" version stays linear;
//  (b) α vs β synchronizer trade-off on ABE networks (Theorem 1 both ways:
//      both pay ≥ n/round; β trades messages for tree-height latency);
//  (c) gossip on ad-hoc (random geometric) ABE networks — the deployment
//      class the paper motivates the model with;
//  (d) the online δ̂ estimator bracketing a drifting expected delay
//      (Section 2's "the best we can deduce is an upper bound").
#include "bench_util.h"
#include "core/announce.h"
#include "core/delta_estimator.h"
#include "algo/gossip.h"
#include "net/topology.h"
#include "stats/summary.h"
#include "syncr/alpha.h"
#include "syncr/beta.h"
#include "syncr/apps.h"

namespace abe {
namespace benchutil {

void print_experiment_tables() {
  print_header("E11",
               "extensions: announced election, alpha-vs-beta, ad-hoc "
               "gossip, online delta bound");

  // (a) announced election stays linear.
  Table announce({"n", "msgs(total)", "msgs/n", "time", "time/n",
                  "indexing_ok"});
  for (std::size_t n : {8, 32, 128}) {
    Summary msgs, time;
    bool consistent = true;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto r =
          run_announced_election(n, linear_regime_a0(n), seed * 11);
      if (!r.all_done) continue;
      msgs.add(static_cast<double>(r.messages));
      time.add(r.completion_time);
      consistent = consistent && r.distances_consistent;
    }
    announce.add_row({Table::fmt_int(static_cast<std::int64_t>(n)),
                      Table::fmt(msgs.mean(), 1),
                      Table::fmt(msgs.mean() / n, 2),
                      Table::fmt(time.mean(), 1),
                      Table::fmt(time.mean() / n, 2),
                      consistent ? "yes" : "NO"});
  }
  std::printf("%s\n",
              announce.render("E11a: election + announcement wave "
                              "(every node learns; ring gets indexed)")
                  .c_str());

  // (b) alpha vs beta on a dense and a deep topology.
  Table sync({"topology", "sync", "msgs/round", "completion_time"});
  const struct {
    const char* label;
    Topology topology;
  } shapes[] = {{"complete(12)", complete(12)}, {"line(16)", line(16)}};
  for (const auto& shape : shapes) {
    const auto alpha = run_alpha_synchronizer(
        shape.topology, counter_app_factory(), 20, exponential_delay(1.0),
        3);
    const auto beta = run_beta_synchronizer(
        shape.topology, counter_app_factory(), 20, exponential_delay(1.0),
        3);
    sync.add_row({shape.label, "alpha",
                  Table::fmt(alpha.messages_per_round, 1),
                  Table::fmt(alpha.completion_time, 1)});
    sync.add_row({shape.label, "beta",
                  Table::fmt(beta.messages_per_round, 1),
                  Table::fmt(beta.completion_time, 1)});
  }
  std::printf("%s\n",
              sync.render("E11b: alpha vs beta (messages vs latency; both "
                          ">= n per round, per Theorem 1)")
                  .c_str());

  // (c) gossip on random geometric graphs under different delay laws.
  Table gossip({"n", "delay", "spread_time", "messages"});
  for (std::size_t n : {25, 64}) {
    for (const char* delay : {"fixed", "exponential", "lomax"}) {
      Summary time, msgs;
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed * 7);
        GossipExperiment e;
        e.topology = random_geometric(n, 0.25, rng);
        e.delay_name = delay;
        e.seed = seed;
        const auto r = run_gossip(e);
        if (!r.all_informed) continue;
        time.add(r.spread_time);
        msgs.add(static_cast<double>(r.messages));
      }
      gossip.add_row({Table::fmt_int(static_cast<std::int64_t>(n)), delay,
                      Table::fmt(time.mean(), 1),
                      Table::fmt(msgs.mean(), 0)});
    }
  }
  std::printf("%s\n",
              gossip.render("E11c: rumor spreading on ad-hoc geometric "
                            "ABE networks")
                  .c_str());

  // (d) delta estimator through a calm -> storm -> calm day.
  Table est({"phase", "true_mean", "est_mean", "advertised_bound",
             "bound>=true"});
  DeltaEstimator estimator;
  Rng rng(5);
  const struct {
    const char* phase;
    double mean;
  } day[] = {{"calm", 1.0}, {"storm", 6.0}, {"calm_again", 1.0}};
  for (const auto& phase : day) {
    const auto model = exponential_delay(phase.mean);
    for (int i = 0; i < 3000; ++i) estimator.observe(model->sample(rng));
    est.add_row({phase.phase, Table::fmt(phase.mean, 1),
                 Table::fmt(estimator.mean_estimate(), 2),
                 Table::fmt(estimator.upper_bound(), 2),
                 estimator.upper_bound() >= phase.mean ? "yes" : "NO"});
  }
  std::printf("%s\n",
              est.render("E11d: online delta-hat through a delay regime "
                         "shift (bounds widen fast, tighten slowly)")
                  .c_str());
}

}  // namespace benchutil

static void BM_AnnouncedElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_announced_election(n, linear_regime_a0(n), seed++).messages);
  }
}
BENCHMARK(BM_AnnouncedElection)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

static void BM_BetaSync(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_beta_synchronizer(grid(4, 4), counter_app_factory(), 10,
                              exponential_delay(1.0), seed++)
            .messages_total);
  }
}
BENCHMARK(BM_BetaSync)->Unit(benchmark::kMillisecond);

static void BM_GossipGeometric(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed);
    GossipExperiment e;
    e.topology = random_geometric(36, 0.25, rng);
    e.seed = seed++;
    benchmark::DoNotOptimize(run_gossip(e).messages);
  }
}
BENCHMARK(BM_GossipGeometric)->Unit(benchmark::kMillisecond);

}  // namespace abe

ABE_BENCH_MAIN()
