// abe-lint-fixture-path: src/algo/bad_rand.cpp
// Must trip wall-clock (twice): std::rand bypasses the seeded Rng and
// time(nullptr) seeds from the wall.
#include <cstdlib>
#include <ctime>

namespace abe {

int lottery() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  return std::rand();
}

}  // namespace abe
