// abe-lint-fixture-path: src/scenario/drivers.cpp
// Must pass: delay-model factories are the normal currency everywhere
// OUTSIDE src/adversary/ — the rule is scoped to adversary policies only.

namespace abe {

double scenario_mean() {
  auto model = exponential_delay(1.0);
  return model->mean_delay();
}

}  // namespace abe
