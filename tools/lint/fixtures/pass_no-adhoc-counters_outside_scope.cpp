// abe-lint-fixture-path: src/algo/fake_votes.h
// Protocol state that happens to count things: vote tallies are algorithm
// logic, not observability, and src/algo/ is out of the rule's scope.
#include <cstdint>

namespace abe {

class FakeVoteCollector {
 public:
  void on_vote() { ++vote_count_; }
  std::uint64_t votes() const { return vote_count_; }

 private:
  std::uint64_t vote_count_ = 0;
};

}  // namespace abe
