// abe-lint-fixture-path: src/net/bad_capture.cpp
// Must trip inline-capture: a deferred [&] closure dangles when the
// enclosing frame returns, and hides the capture set from the
// InlineAction 48-byte budget.
namespace abe {

struct FakeScheduler {
  template <typename F>
  void schedule_at(double when, F&& action);
  template <typename F>
  void schedule_in(double delay, F&& action);
};

void deliver_later(FakeScheduler& scheduler, int edge, double arrival) {
  int hops = edge + 1;
  scheduler.schedule_at(arrival, [&] { ++hops; });
}

}  // namespace abe
