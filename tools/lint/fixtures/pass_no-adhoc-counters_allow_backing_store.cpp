// abe-lint-fixture-path: src/net/fake_backed.h
// The sanctioned shape: a hot-path member that IS the backing store of a
// metrics_snapshot() row, waived with a named justification.
#include <cstdint>

namespace abe {

class FakeBacked {
 public:
  std::uint64_t value() const { return pop_count_; }

 private:
  // Backing store of the "fake.pops" snapshot row (see metrics_snapshot).
  // abe-lint: allow(no-adhoc-counters)
  std::uint64_t pop_count_ = 0;
};

}  // namespace abe
