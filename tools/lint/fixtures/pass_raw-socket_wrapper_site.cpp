// abe-lint-fixture-path: src/runtime/udp_socket.cpp
// The sanctioned wrapper: the one file allowed to touch the libc socket
// surface directly.
#include <sys/socket.h>

namespace abe {

int open_wrapped() {
  int fd = ::socket(2, 2, 0);
  ::bind(fd, nullptr, 0);
  ::sendto(fd, "x", 1, 0, nullptr, 0);
  char buf[16];
  ::recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
  return fd;
}

}  // namespace abe
