// abe-lint-fixture-path: src/net/probe.cpp
// A narrowly waived direct call: the pragma names the rule, so the waiver
// is visible and greppable.
#include <sys/socket.h>

namespace abe {

int probe_loopback_mtu() {
  // abe-lint: allow(raw-socket)
  int fd = ::socket(2, 2, 0);
  return fd;
}

}  // namespace abe
