// abe-lint-fixture-path: src/adversary/budgeted_policy.cpp
// Must pass: the compliant shape. The policy receives the advertised
// expected-delay bound as a number, expresses its schedule as proposed
// delays, and every grant is clamped by the BoundedAdversary wrapper.
// The next_delay() call also pins the rule's precision: the factory list
// must never match the policy interface's own *_delay methods.

namespace abe {

double budgeted_policy_grant(double bound) {
  auto schedule = [bound](std::uint64_t idx, std::uint64_t, std::uint64_t) {
    return idx % 2 == 0 ? 0.0 : bound * 2.0;
  };
  auto policy = make_bounded_adversary("fixture", bound, schedule);
  return policy->next_delay(0, 1, 0);
}

}  // namespace abe
