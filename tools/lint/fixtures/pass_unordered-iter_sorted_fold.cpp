// abe-lint-fixture-path: src/scenario/good_fold.cpp
// Must pass: the keys are sorted before folding, so the Summary sees a
// deterministic order; membership tests (no iteration) are fine too.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace abe {

struct Summary {
  double sum = 0.0;
  void add(double x) { sum += x; }
};

Summary fold_counts(const std::unordered_map<std::uint64_t, double>& counts) {
  std::vector<std::uint64_t> keys;
  keys.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) keys.push_back(i);
  std::sort(keys.begin(), keys.end());
  Summary summary;
  for (const std::uint64_t key : keys) {
    const auto it = counts.find(key);
    if (it != counts.end()) summary.add(it->second);
  }
  return summary;
}

}  // namespace abe
