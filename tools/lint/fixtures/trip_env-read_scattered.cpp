// abe-lint-fixture-path: src/net/bad_env.cpp
// Must trip env-read: an ABE_* read outside the sanctioned config plumbing
// makes the run's configuration invisible to the provenance block.
#include <cstdlib>

namespace abe {

bool debug_delays_enabled() {
  return std::getenv("ABE_DEBUG_DELAYS") != nullptr;
}

}  // namespace abe
