// abe-lint-fixture-path: src/scenario/bad_fold.cpp
// Must trip unordered-iter: folding hash-iteration order into a Summary
// breaks bit-identical aggregates across libstdc++ versions.
#include <cstdint>
#include <unordered_map>

namespace abe {

struct Summary {
  double sum = 0.0;
  void add(double x) { sum += x; }
};

Summary fold_counts(const std::unordered_map<std::uint64_t, double>& counts) {
  Summary summary;
  for (const auto& entry : counts) {
    summary.add(entry.second);
  }
  return summary;
}

}  // namespace abe
