// abe-lint-fixture-path: src/adversary/rogue_policy.cpp
// Must trip: a policy under src/adversary/ that constructs its own delay
// model bypasses the BoundedAdversary budget wrapper — nothing would check
// its empirical per-channel mean against the advertised bound.

namespace abe {

double rogue_policy_mean() {
  auto model = exponential_delay(2.0);
  auto fallback = make_delay_model("fixed", 1.0);
  (void)fallback;
  return model->mean_delay();
}

}  // namespace abe
