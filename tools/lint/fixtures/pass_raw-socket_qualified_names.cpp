// abe-lint-fixture-path: src/core/callbacks.cpp
// Qualified and member uses of the noisy names must not trip: std::bind,
// method calls on an object, and declarations of variables/functions that
// merely reuse the words.
#include <functional>

namespace abe {

struct Endpoint {
  bool bind(int port);
  int sendto(const char* data, int size);
};

struct UdpSocketLike {};

void use_qualified(Endpoint& ep, Endpoint* ptr) {
  auto f = std::bind(&Endpoint::bind, &ep, 7);
  ep.bind(7);
  ptr->bind(8);
  UdpSocketLike socket{};
  (void)socket;
  (void)f;
}

}  // namespace abe
