// abe-lint-fixture-path: src/core/trial_pool.cpp
// Must pass: this path IS the sanctioned ABE_TRIAL_THREADS plumbing site
// (the real file; the allowlist is keyed by repo-relative path). Non-ABE
// env reads are clang-tidy's business (concurrency-mt-unsafe), not ours.
#include <cstdlib>

namespace abe {

const char* trial_threads_env() { return std::getenv("ABE_TRIAL_THREADS"); }

}  // namespace abe
