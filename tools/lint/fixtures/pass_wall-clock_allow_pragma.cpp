// abe-lint-fixture-path: src/sim/waived_clock.cpp
// Must pass: the per-rule allowlist pragma waives exactly this rule on the
// next line (e.g. a diagnostics-only path that never feeds aggregates).
#include <chrono>

namespace abe {

long long diagnostics_only_stamp() {
  // abe-lint: allow(wall-clock)
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace abe
