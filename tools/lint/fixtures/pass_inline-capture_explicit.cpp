// abe-lint-fixture-path: src/net/good_capture.cpp
// Must pass: explicit capture lists on scheduled closures (the repo idiom:
// [this, i]-style, auditable against InlineAction::kInlineSize), and
// immediate-use lambdas elsewhere may still capture by default.
#include <algorithm>
#include <vector>

namespace abe {

struct FakeScheduler {
  template <typename F>
  void schedule_at(double when, F&& action);
};

struct Courier {
  FakeScheduler* scheduler = nullptr;
  int delivered = 0;

  void deliver_later(int edge, double arrival) {
    scheduler->schedule_at(arrival, [this, edge] { delivered += edge; });
  }

  int count_positive(const std::vector<int>& xs) const {
    return static_cast<int>(
        std::count_if(xs.begin(), xs.end(), [&](int x) { return x > 0; }));
  }
};

}  // namespace abe
