// abe-lint-fixture-path: src/net/fake_link.h
// A hand-rolled tally member in network infrastructure: this count exists
// purely to be reported, so it must be an obs/metrics.h registry counter
// (or a documented backing store of a metrics_snapshot() row).
#include <atomic>
#include <cstdint>

namespace abe {

class FakeLink {
 public:
  void on_drop() { drop_count_.fetch_add(1); }

 private:
  std::atomic<std::uint64_t> drop_count_{0};
  std::uint64_t retry_tally_ = 0;
};

}  // namespace abe
