// abe-lint-fixture-path: src/sim/bad_clock.cpp
// Must trip wall-clock: system_clock in simulator code makes seeded runs
// irreproducible.
#include <chrono>

namespace abe {

double wall_seconds() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace abe
