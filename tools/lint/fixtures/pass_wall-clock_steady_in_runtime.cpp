// abe-lint-fixture-path: src/runtime/good_deadline.cpp
// Must pass: steady_clock under src/runtime/ is the sanctioned wall-deadline
// machinery (mailbox due times, trial wall budgets), and mentions of
// system_clock in comments or strings never count.
#include <chrono>
#include <string>

namespace abe {

std::chrono::steady_clock::time_point budget_deadline(double ms) {
  return std::chrono::steady_clock::now() +
         std::chrono::microseconds(static_cast<long long>(ms * 1000.0));
}

std::string describe() { return "never uses system_clock at runtime"; }

}  // namespace abe
