// abe-lint-fixture-path: src/scenario/bad_steady.cpp
// Must trip wall-clock: steady_clock is sanctioned under src/runtime/ only
// (wall-deadline code); in the scenario layer it leaks wall time into
// results.
#include <chrono>

namespace abe {

long long scenario_stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace abe
