// abe-lint-fixture-path: src/net/rogue_transport.cpp
// A transport layer that opens its own datagram socket instead of going
// through the UdpSocket wrapper: every spelling here must trip.
#include <sys/socket.h>

namespace abe {

int open_rogue_channel() {
  int fd = ::socket(2, 2, 0);       // explicit global-namespace call
  if (bind(fd, nullptr, 0) != 0) {  // bare libc spelling
    return -1;
  }
  sendto(fd, "x", 1, 0, nullptr, 0);
  char buf[16];
  recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
  return fd;
}

}  // namespace abe
