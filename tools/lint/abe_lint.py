#!/usr/bin/env python3
"""abe_lint — project-specific determinism and discipline checks.

The ABE reproduction's core claim is that seeded simulator aggregates are
bit-identical across schedulers, event-queue backends, thread counts and
refactors. clang-tidy cannot see the project-level invariants that keep
that true, so this linter enforces them:

  wall-clock      No wall-clock or libc randomness in library code: the
                  only time is SimTime, the only randomness is the seeded
                  Rng. std::chrono::steady_clock is allowed under
                  src/runtime/ only (wall-deadline and mailbox due-time
                  code — the thread runtime is wall-clock driven by
                  design).
  unordered-iter  No range-for over std::unordered_{map,set} in any file
                  that writes Summary/aggregate state: hash-table
                  iteration order is libstdc++-version- and seed-
                  dependent, so folding it into an aggregate silently
                  breaks bit-identity.
  env-read        No ABE_* environment reads outside the sanctioned
                  config-plumbing sites (ABE_EQUEUE in
                  sim/equeue/backend.cpp, ABE_TRIAL_THREADS in
                  core/trial_pool.cpp): scattered env reads make a run's
                  configuration unreproducible from its provenance block.
  inline-capture  Closures handed to Scheduler::schedule_at/schedule_in
                  must use explicit capture lists. Default [&]/[=]
                  captures hide the capture set, which must stay within
                  InlineAction::kInlineSize (48 bytes, no per-event
                  allocation) and must not dangle (deferred closures
                  outlive the enclosing scope).
  adversary-delay No direct DelayModel construction inside src/adversary/:
                  an adversarial delay policy must route every proposed
                  delay through the BoundedAdversary budget wrapper
                  (adversary/delay_policy.h), which is what keeps the
                  empirical per-channel mean provably within the model's
                  advertised expected-delay bound. A policy that spawns
                  its own delay model bypasses that check and can violate
                  the ABE contract silently.
  no-adhoc-counters
                  No hand-rolled tally members (integral or atomic members
                  named *count_/*counter_/*tally_) in the infrastructure
                  layers (src/sim/, src/net/, src/runtime/, src/trace/):
                  a counter that exists to be observed belongs in the
                  obs/metrics.h registry, or must be the documented
                  backing store of a metrics_snapshot() row (allow() it
                  there, with the row named in a comment). Scattered
                  one-off tallies are exactly what the metrics registry
                  replaced — they have no snapshot order, no merge
                  semantics, and no JSON surface. Algorithm state that
                  happens to count things (vote tallies, round counters in
                  src/algo/, src/core/, …) is protocol logic, not
                  observability, and is out of scope by path.
  raw-socket      No direct socket(2)/bind/sendto/recvfrom calls outside
                  src/runtime/udp_socket.*: that wrapper is the single
                  place the OS networking surface is touched, so loss
                  injection, the 20 ms shutdown poll, fd hygiene and the
                  port-budget cap stay enforceable in one file. Qualified
                  names (std::bind, obj.bind(...)) never trip; the bare
                  libc spellings and explicit ::socket etc. do.

Suppressions (each names the rule, so waivers stay narrow):
  // abe-lint: allow(<rule>)        on the offending or preceding line
  // abe-lint: allow-file(<rule>)   anywhere in the file

Usage:
  abe_lint.py [--root DIR] [PATH...]     lint files/dirs (default: src)
  abe_lint.py --self-test                run the fixture corpus
Exit codes: 0 clean, 1 findings, 2 infrastructure error.

Heuristic limits (by design — this is a grep-power linter, not a parser):
type aliases that rename a forbidden clock and iteration through an
unordered container hidden behind a function call are not caught; the
sanitizer matrix and the cross-backend differential tests are the
backstop for those.
"""

import argparse
import os
import re
import sys

LINT_EXTENSIONS = (".h", ".cpp", ".cc")

PRAGMA_RE = re.compile(r"//\s*abe-lint:\s*allow\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
PRAGMA_FILE_RE = re.compile(
    r"//\s*abe-lint:\s*allow-file\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\)"
)

# --- wall-clock ------------------------------------------------------------

WALL_CLOCK_TOKENS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "libc randomness"),
    (re.compile(r"(?<!_)\brand\s*\(\s*\)"), "libc randomness"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "wall-clock seed"),
    (re.compile(r"\bsystem_clock\b"), "wall clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "wall clock"),
    (re.compile(r"\bsteady_clock\b"), "monotonic wall clock"),
    (re.compile(r"\bclock_gettime\s*\(|\bgettimeofday\s*\("), "wall clock"),
]

# steady_clock is legitimate wall-deadline machinery on the thread runtime.
STEADY_CLOCK_ALLOWED_PREFIX = "src/runtime/"

# --- unordered-iter --------------------------------------------------------

# A file "writes aggregate state" if it touches the summary/aggregate
# types that feed sweep JSON.
AGGREGATE_MARKER_RE = re.compile(r"\bSummary\b|\bAggregate\b|\.merge\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*[&*]?\s*(\w+)"
)
# The declaration part may contain :: scope qualifiers; the range colon is
# the first single ':' (a classic for's ';' kills the match).
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\((?:[^;(){}:]|::)*?(?<!:):(?!:)\s*(?P<range>[^)]+)\)"
)

# --- env-read --------------------------------------------------------------

ENV_READ_RE = re.compile(r"\bgetenv\s*\(\s*\"ABE_\w*\"")
ENV_READ_ALLOWED_FILES = {
    "src/sim/equeue/backend.cpp",   # ABE_EQUEUE backend override
    "src/core/trial_pool.cpp",      # ABE_TRIAL_THREADS worker count
}

# --- inline-capture --------------------------------------------------------

SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:at|in)\s*\(")
DEFAULT_CAPTURE_RE = re.compile(r"\[\s*[&=]\s*[,\]]")

# --- adversary-delay -------------------------------------------------------

# The explicit factory list from net/delay.h, NOT a `\w+_delay` wildcard:
# the policy interface's own next_delay()/propose_delay() calls are
# legitimate and must never trip this rule.
DELAY_FACTORY_RE = re.compile(
    r"\b(?:make_delay_model|fixed_delay|uniform_delay|exponential_delay|"
    r"shifted_exponential_delay|erlang_delay|geometric_retransmission_delay|"
    r"lomax_delay|bimodal_delay|weibull_delay|lognormal_delay|"
    r"hyperexponential_delay)\s*\("
)
ADVERSARY_PATH_PREFIX = "src/adversary/"

# --- raw-socket ------------------------------------------------------------

# The libc datagram surface. `bind` is the noisy one: std::bind, member
# .bind(...)/->bind(...) and declarations (`UdpSocket socket(...)`) are all
# legitimate, so the check inspects what precedes the token (see
# check_raw_socket) instead of widening the regex.
RAW_SOCKET_RE = re.compile(r"\b(?:socket|sendto|recvfrom|bind)\s*\(")
RAW_SOCKET_ALLOWED_PREFIX = "src/runtime/udp_socket."

# --- no-adhoc-counters -----------------------------------------------------

# Member declarations (trailing-underscore naming) of integral or atomic
# integral type whose name reads as a tally. Locals named `count` in a loop
# are fine — observability state is member state.
ADHOC_COUNTER_RE = re.compile(
    r"\b(?:std::)?(?:atomic\s*<[^<>]*>|u?int(?:8|16|32|64)?_t|size_t|"
    r"unsigned(?:\s+(?:int|long|long\s+long))?|long\s+long|long|int)\s+"
    r"(?:\w*(?:count|counter|tally)s?_)\s*(?:=|;|\{|\[)"
)
# The layers whose counters feed metrics_snapshot(); algorithm/protocol
# state elsewhere is out of scope.
ADHOC_COUNTER_PATH_PREFIXES = (
    "src/sim/", "src/net/", "src/runtime/", "src/trace/",
)

RULES = ("wall-clock", "unordered-iter", "env-read", "inline-capture",
         "adversary-delay", "no-adhoc-counters", "raw-socket")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text, keep_strings=False):
    """Blanks out comments (and, unless keep_strings, string/char
    literals), preserving line structure, so tokens inside prose or
    messages never trip a rule. env-read keeps strings: the "ABE_..."
    literal is the evidence it matches on."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            if keep_strings:
                out.append(text[i : j + 1])
            else:
                out.append(" " * (min(j, n - 1) + 1 - i))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_suppressions(raw_lines):
    """Returns (per_line, per_file): rule-name sets keyed by line number."""
    per_line = {}
    per_file = set()
    for lineno, line in enumerate(raw_lines, start=1):
        m = PRAGMA_FILE_RE.search(line)
        if m:
            per_file.update(r.strip() for r in m.group("rules").split(","))
            continue
        m = PRAGMA_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group("rules").split(",")}
            # The pragma covers its own line and the next code line, so it
            # can ride above the offending statement.
            per_line.setdefault(lineno, set()).update(rules)
            per_line.setdefault(lineno + 1, set()).update(rules)
    return per_line, per_file


def is_suppressed(rule, lineno, per_line, per_file):
    return rule in per_file or rule in per_line.get(lineno, set())


def check_wall_clock(relpath, lines, add):
    for lineno, line in enumerate(lines, start=1):
        for pattern, what in WALL_CLOCK_TOKENS:
            if not pattern.search(line):
                continue
            if "steady_clock" in pattern.pattern and relpath.startswith(
                STEADY_CLOCK_ALLOWED_PREFIX
            ):
                continue
            add(
                lineno,
                "wall-clock",
                f"{what} in deterministic library code (seeded Rng and "
                f"SimTime are the only time/randomness sources; "
                f"steady_clock only under {STEADY_CLOCK_ALLOWED_PREFIX})",
            )


def check_unordered_iter(relpath, lines, add):
    text = "\n".join(lines)
    if not AGGREGATE_MARKER_RE.search(text):
        return
    unordered_names = set(UNORDERED_DECL_RE.findall(text))
    for lineno, line in enumerate(lines, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        range_expr = m.group("range").strip()
        terminal = re.split(r"[.\->]+", range_expr)[-1].strip("()& ")
        if "unordered" in range_expr or terminal in unordered_names:
            add(
                lineno,
                "unordered-iter",
                "range-for over an unordered container in a file that "
                "writes Summary/aggregate state: hash iteration order is "
                "not deterministic across libstdc++ versions — sort keys "
                "first or use an ordered container",
            )


def check_env_read(relpath, lines, add):
    # `lines` here keep string literals (see lint_file): the "ABE_..."
    # argument is what identifies a config read.
    if relpath in ENV_READ_ALLOWED_FILES:
        return
    for lineno, line in enumerate(lines, start=1):
        if ENV_READ_RE.search(line):
            add(
                lineno,
                "env-read",
                "ABE_* environment read outside config plumbing "
                f"(sanctioned sites: {', '.join(sorted(ENV_READ_ALLOWED_FILES))})",
            )


def check_inline_capture(relpath, lines, add):
    for lineno, line in enumerate(lines, start=1):
        for m in SCHEDULE_CALL_RE.finditer(line):
            # The lambda usually opens on the same line; a wrapped call
            # puts it on the next one or two. `window` starts with the
            # current line, so m.start() indexes into it directly.
            window = " ".join(lines[lineno - 1 : lineno + 2])
            tail = window[m.start() :]
            bracket = tail.find("[")
            if bracket == -1:
                continue
            if DEFAULT_CAPTURE_RE.match(tail[bracket:]):
                add(
                    lineno,
                    "inline-capture",
                    "default [&]/[=] capture in a scheduled closure: "
                    "deferred closures outlive their scope (dangling refs) "
                    "and the capture set must stay within "
                    "InlineAction::kInlineSize — list captures explicitly",
                )


def check_adversary_delay(relpath, lines, add):
    if not relpath.startswith(ADVERSARY_PATH_PREFIX):
        return
    for lineno, line in enumerate(lines, start=1):
        if DELAY_FACTORY_RE.search(line):
            add(
                lineno,
                "adversary-delay",
                "direct DelayModel construction inside an adversary "
                "policy: delays must flow through the BoundedAdversary "
                "budget wrapper (adversary/delay_policy.h) so the "
                "empirical per-channel mean stays within the advertised "
                "bound — take the bound as a number, not a delay model",
            )


def check_no_adhoc_counters(relpath, lines, add):
    if not relpath.startswith(ADHOC_COUNTER_PATH_PREFIXES):
        return
    for lineno, line in enumerate(lines, start=1):
        if ADHOC_COUNTER_RE.search(line):
            add(
                lineno,
                "no-adhoc-counters",
                "hand-rolled tally member in infrastructure code: a "
                "counter that exists to be observed belongs in the "
                "obs/metrics.h registry or must be the documented backing "
                "store of a metrics_snapshot() row (allow() it there, "
                "naming the row)",
            )


def check_raw_socket(relpath, lines, add):
    if relpath.startswith(RAW_SOCKET_ALLOWED_PREFIX):
        return
    for lineno, line in enumerate(lines, start=1):
        for m in RAW_SOCKET_RE.finditer(line):
            prefix = line[: m.start()].rstrip()
            # Member call: someobj.bind(...) / ptr->bind(...).
            if prefix.endswith(".") or prefix.endswith("->"):
                continue
            if prefix.endswith("::"):
                qualifier = prefix[:-2].rstrip()
                # std::bind / Socket::bind — a named scope, not libc.
                # A bare leading :: (global namespace) IS the libc call.
                if qualifier and (qualifier[-1].isalnum()
                                  or qualifier[-1] in "_>"):
                    continue
            else:
                # `UdpSocket socket(fd)` / `int bind(int fd);` — a type or
                # declarator precedes the token, so this declares a
                # variable/function rather than calling libc. Control-flow
                # keywords still expose a real call (`return socket(...)`).
                tok = re.search(r"[\w>]+$", prefix)
                if tok and tok.group(0) not in ("return", "co_return",
                                                "co_await", "case"):
                    continue
            add(
                lineno,
                "raw-socket",
                "direct socket-API call outside src/runtime/udp_socket.*: "
                "the UdpSocket wrapper is the single OS networking "
                "touchpoint (loss injection, shutdown poll, fd hygiene, "
                "port budget) — route datagram I/O through it",
            )


# (check, needs_string_literals) — env-read matches on the "ABE_" literal.
CHECKS = (
    (check_wall_clock, False),
    (check_unordered_iter, False),
    (check_env_read, True),
    (check_inline_capture, False),
    (check_adversary_delay, False),
    (check_no_adhoc_counters, False),
    (check_raw_socket, False),
)


def lint_file(fs_path, relpath):
    try:
        with open(fs_path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"abe_lint: cannot read {fs_path}: {e}", file=sys.stderr)
        sys.exit(2)
    raw_lines = raw.splitlines()
    per_line, per_file = collect_suppressions(raw_lines)
    code_lines = strip_comments_and_strings(raw).splitlines()
    code_with_strings = strip_comments_and_strings(
        raw, keep_strings=True).splitlines()

    findings = []

    def add(lineno, rule, message):
        if not is_suppressed(rule, lineno, per_line, per_file):
            findings.append(Finding(relpath, lineno, rule, message))

    for check, needs_strings in CHECKS:
        check(relpath, code_with_strings if needs_strings else code_lines, add)
    return findings


def iter_lintable(root, paths):
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            yield full, os.path.relpath(full, root).replace(os.sep, "/")
            continue
        if not os.path.isdir(full):
            print(f"abe_lint: no such path: {full}", file=sys.stderr)
            sys.exit(2)
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            # The fixture corpus intentionally trips every rule.
            dirnames[:] = [d for d in dirnames if d != "fixtures"]
            for name in sorted(filenames):
                if name.endswith(LINT_EXTENSIONS):
                    fs = os.path.join(dirpath, name)
                    yield fs, os.path.relpath(fs, root).replace(os.sep, "/")


FIXTURE_PATH_RE = re.compile(r"//\s*abe-lint-fixture-path:\s*(\S+)")
# Anchored to the known rule names: a lazy ([a-z-]+?) would misparse
# "adversary-delay" as rule "adversary" (an underscore follows it).
FIXTURE_NAME_RE = re.compile(
    r"^(trip|pass)_(" + "|".join(re.escape(r) for r in RULES)
    + r")_[a-z0-9_]+\.cpp$")


def self_test(fixtures_dir):
    """Each rule needs ≥1 trip_<rule>_*.cpp (must produce that finding)
    and ≥1 pass_<rule>_*.cpp (must produce no findings at all)."""
    if not os.path.isdir(fixtures_dir):
        print(f"abe_lint: fixtures dir missing: {fixtures_dir}", file=sys.stderr)
        return 2
    covered = {rule: {"trip": 0, "pass": 0} for rule in RULES}
    failures = []
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(".cpp"):
            continue
        m = FIXTURE_NAME_RE.match(name)
        if not m:
            failures.append(f"{name}: fixture name must be (trip|pass)_<rule>_<case>.cpp")
            continue
        kind, rule = m.group(1), m.group(2)
        if rule not in RULES:
            failures.append(f"{name}: unknown rule '{rule}' (rules: {', '.join(RULES)})")
            continue
        fs_path = os.path.join(fixtures_dir, name)
        with open(fs_path, "r", encoding="utf-8") as f:
            head = f.read(4096)
        pm = FIXTURE_PATH_RE.search(head)
        relpath = pm.group(1) if pm else f"src/sim/{name}"
        findings = lint_file(fs_path, relpath)
        covered[rule][kind] += 1
        if kind == "trip":
            if not any(f.rule == rule for f in findings):
                failures.append(f"{name}: expected a [{rule}] finding, got "
                                f"{[str(f) for f in findings] or 'none'}")
        else:
            if findings:
                failures.append(f"{name}: expected clean, got "
                                f"{[str(f) for f in findings]}")
    for rule, kinds in covered.items():
        for kind, count in kinds.items():
            if count == 0:
                failures.append(f"rule '{rule}' has no {kind} fixture")
    if failures:
        for f in failures:
            print(f"abe_lint self-test FAIL: {f}")
        return 1
    total = sum(k["trip"] + k["pass"] for k in covered.values())
    print(f"abe_lint self-test OK: {total} fixtures, "
          f"{len(RULES)} rules, all tripped and passed as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to --root (default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus under tools/lint/fixtures")
    args = parser.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(script_dir))

    if args.self_test:
        sys.exit(self_test(os.path.join(script_dir, "fixtures")))

    paths = args.paths or ["src"]
    findings = []
    checked = 0
    for fs_path, relpath in iter_lintable(root, paths):
        findings.extend(lint_file(fs_path, relpath))
        checked += 1
    findings.sort(key=lambda f: (f.path, f.line))
    for finding in findings:
        print(finding)
    if findings:
        print(f"abe_lint: {len(findings)} finding(s) in {checked} file(s)")
        sys.exit(1)
    print(f"abe_lint: clean ({checked} files)")
    sys.exit(0)


if __name__ == "__main__":
    main()
